"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

from repro.scheduling.scheduler import MatcherName


@dataclass
class SimulationConfig:
    """All knobs of a data-transfer simulation run.

    Defaults mirror the paper's setup (Sec. 4): one simulated day at
    60-second scheduling cadence, satellites generating 100 GB/day, stable
    matching, latency-optimized value function chosen by the caller.
    """

    start: datetime = field(default_factory=lambda: datetime(2020, 6, 1))
    duration_s: float = 86400.0
    step_s: float = 60.0
    matcher: MatcherName = "stable"
    #: Schedule on forecasts issued every ``forecast_refresh_s`` (True) or
    #: on truth weather (False -- the paper's idealized predictor).
    use_forecast: bool = False
    forecast_refresh_s: float = 6 * 3600.0
    #: Enforce the hybrid constraint that a satellite may only dump to
    #: receive-only stations while holding a plan younger than
    #: ``plan_max_age_s`` (uploaded at tx-capable contacts).
    enforce_plan_distribution: bool = False
    plan_max_age_s: float = 12 * 3600.0
    #: After an ack batch arrives, chunks sent more than this long before
    #: the contact with no ack are presumed lost and requeued.
    ack_timeout_s: float = 3 * 3600.0
    #: DVB-S2 ACM margin used by the link predictions.
    acm_margin_db: float = 1.0
    #: Record a backlog/storage snapshot every this many steps (0 = never).
    snapshot_every_steps: int = 60
    #: Append per-transmission/delivery/ack events to ``Simulation.events``
    #: (off by default: a full-scale day generates ~100k events).
    record_events: bool = False
    #: Seconds lost to antenna slew + carrier acquisition each time a
    #: station switches to a new satellite (the first step of a new link
    #: transmits proportionally less).  0 = the paper's idealized instant
    #: handover.
    acquisition_overhead_s: float = 0.0
    #: How the schedule reaches the actors.  ``live``: every actor follows
    #: the scheduler's per-instant matching (the paper's simulation).
    #: ``planned``: the operational model of Sec. 3 -- the backend issues a
    #: horizon plan every ``plan_refresh_s``; receive-only stations follow
    #: the latest plan immediately (Internet), but each satellite follows
    #: the plan it last *received at a transmit-capable contact*, so stale
    #: satellite plans can point at stations that are no longer listening.
    #: ``diversity``: live matching, but up to ``diversity_receivers``
    #: stations listen to each pass and the backend combines their
    #: independently-errored copies (Sec. 3.3's hybrid reception).
    execution_mode: str = "live"
    plan_refresh_s: float = 3600.0
    plan_horizon_s: float = 2 * 3600.0
    #: Diversity mode: total receivers per pass step (the matched primary
    #: plus up to N-1 otherwise-idle stations that can also see the
    #: satellite).  1 = stochastic decode without overlap, isolating the
    #: per-copy loss model from the combiner's gain.
    diversity_receivers: int = 2
    #: Seed for the deterministic per-(satellite, station, time) decode
    #: draws in :class:`repro.network.diversity.DiversityCombiner`.
    diversity_seed: int = 19
    #: Batch-propagate the fleet over the whole horizon up front (one
    #: vectorized SGP4 pass, shared across variants via the ephemeris
    #: cache) instead of per-satellite propagation at every step.
    precompute_ephemeris: bool = True
    #: Price edges through the batched link-budget kernel.  ``False``
    #: selects the scalar per-pair reference path; the equivalence tests
    #: run both and compare schedules.
    batched_kernels: bool = True
    #: Coarse-grid candidate prefilter: per-step graph cost tracks
    #: candidate pairs instead of the full M x N product.  Bit-identical
    #: results either way (the prefilter is a conservative superset);
    #: ``False`` pins the dense reference path.  Batched kernels only.
    spatial_culling: bool = True
    #: Ephemeris storage dtype: ``"float64"`` (exact) or ``"float32"``
    #: (half the memory; sub-meter position rounding at LEO radii, below
    #: the link model's sensitivity but not bit-identical to float64).
    ephemeris_dtype: str = "float64"
    #: Stream the ephemeris in windows of this many steps instead of
    #: materializing the whole horizon (0 = materialize everything).
    #: Bounds peak memory at mega-constellation scale; rows are
    #: bit-identical to the monolithic table.
    ephemeris_window_steps: int = 0
    #: Precompute the contact-window (pass) structure once and drive the
    #: per-step loop from it: candidate generation becomes an index
    #: lookup, zero-contact ticks skip graph/matching entirely, and edge
    #: gathers are reused between rise/set boundaries.  Bit-identical
    #: reports either way (``False`` pins the per-step culled/dense
    #: reference paths).  Requires batched kernels and a precomputed
    #: ephemeris; silently inert otherwise.
    contact_windows: bool = True

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.step_s <= 0:
            raise ValueError("step must be positive")
        if self.step_s > self.duration_s:
            raise ValueError("step cannot exceed duration")
        if self.forecast_refresh_s <= 0:
            raise ValueError("forecast refresh must be positive")
        if not 0.0 <= self.acquisition_overhead_s < self.step_s:
            raise ValueError(
                "acquisition overhead must be within [0, step_s)"
            )
        if self.execution_mode not in ("live", "planned", "diversity"):
            raise ValueError(
                f"execution_mode must be 'live', 'planned', or "
                f"'diversity', got {self.execution_mode!r}"
            )
        if self.diversity_receivers < 1:
            raise ValueError("diversity_receivers must be >= 1")
        if self.plan_refresh_s <= 0 or self.plan_horizon_s <= 0:
            raise ValueError("plan refresh and horizon must be positive")
        if self.plan_horizon_s < self.plan_refresh_s:
            raise ValueError(
                "plan horizon must cover at least one refresh interval"
            )
        if self.ephemeris_dtype not in ("float64", "float32"):
            raise ValueError(
                f"ephemeris_dtype must be 'float64' or 'float32', "
                f"got {self.ephemeris_dtype!r}"
            )
        if self.ephemeris_window_steps < 0:
            raise ValueError("ephemeris window must be non-negative")

    @property
    def num_steps(self) -> int:
        return int(self.duration_s // self.step_s)
