"""The event-driven session lifecycle over the simulation engine.

The batch :meth:`Simulation.run` executes a whole horizon in one call;
a :class:`SimulationSession` drives the *same* four engine stages
(:meth:`~Simulation._begin_loop`, :meth:`~Simulation._step_once`,
:meth:`~Simulation._drain_backend`, :meth:`~Simulation._finalize_report`)
tick by tick, accepting control inputs between ticks:

* :class:`SubmitRequest` -- a tenant asks for a window of a satellite's
  capture stream (injected ahead of the seeded demand stream);
* :class:`QuotaUpdate` -- a tenant's per-day quota changes mid-run (the
  quota-aware pricing sees it at the next scheduling pass);
* :class:`OutageNotice` -- a station announces a maintenance window (the
  scheduler routes around it from the next pass).

Events queue in :meth:`SimulationSession.ingest` and apply at the *next*
tick boundary, never retroactively.  Each tick's executed links are
diffed against the previous tick's into a :class:`PlanDelta` log that
clients (the :mod:`repro.service` daemon) can poll incrementally.

The replay-equivalence guarantee: a session that is never fed an event
runs the exact code path of the batch loop, so ``finalize()`` returns a
:class:`SimulationReport` byte-identical to ``Simulation.run()`` on the
same :class:`ScenarioSpec` (pinned by ``tests/simulation/test_session.py``).

Sessions inherit the engine's contact-window fast paths untouched: with
``ScenarioSpec.contact_windows`` on, each tick reads its active pairs
from the precomputed :class:`~repro.scheduling.windows.ContactWindowIndex`
and zero-contact ticks fast-forward past scheduling entirely -- an
:class:`OutageNotice` still applies, because station availability is
masked at query time, not baked into the index.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from datetime import datetime, timedelta

from repro.obs import build_manifest
from repro.simulation.metrics import GB_TO_BITS, SimulationReport

# -- control-plane events ----------------------------------------------------


@dataclass(frozen=True)
class SubmitRequest:
    """A tenant's externally submitted downlink request.

    ``request_id`` is the client's idempotency key: re-submitting the
    same id is acknowledged as a duplicate and queued once.  The next
    ``chunks`` captures of ``satellite_id`` are stamped with this
    request's tenant/priority/deadline, preempting the seeded stream.
    ``priority`` and ``sla_deadline_s`` default to the tenant's own tier
    and SLA when omitted.
    """

    request_id: str
    tenant_id: str
    satellite_id: str
    chunks: int = 1
    priority: float | None = None
    sla_deadline_s: float | None = None
    region: str = ""


@dataclass(frozen=True)
class QuotaUpdate:
    """A mid-run change to one tenant's per-day quota (GB; 0 = unlimited)."""

    tenant_id: str
    quota_gb_per_day: float


@dataclass(frozen=True)
class OutageNotice:
    """An announced station maintenance window [start, end)."""

    station_id: str
    start: datetime
    end: datetime


@dataclass(frozen=True)
class PlanDelta:
    """One tick's change to the executed downlink plan.

    ``assigned`` lists (satellite_id, station_id) links that started
    this tick; ``released`` lists links that ended.  A satellite
    switching stations appears in both.  Ticks whose links match the
    previous tick produce no delta, so the log length measures plan
    churn directly.
    """

    seq: int
    step: int
    when: str
    assigned: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    released: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "step": self.step,
            "when": self.when,
            "assigned": [list(pair) for pair in self.assigned],
            "released": [list(pair) for pair in self.released],
        }


_EVENT_TYPES = (SubmitRequest, QuotaUpdate, OutageNotice)


class SimulationSession:
    """An incrementally driven simulation accepting events between ticks.

    Build from a :class:`~repro.core.scenarios.ScenarioSpec` (or an
    already-assembled :class:`~repro.core.scenarios.Scenario`), then
    alternate :meth:`ingest` and :meth:`advance` until the horizon, and
    :meth:`finalize` into the :class:`SimulationReport`::

        session = SimulationSession(spec)
        session.ingest([SubmitRequest("r-1", "premium", sat_id)])
        session.advance(steps=10)
        report = session.finalize()
    """

    def __init__(self, spec=None, *, scenario=None):
        if (spec is None) == (scenario is None):
            raise TypeError(
                "SimulationSession takes exactly one of spec= or scenario="
            )
        if scenario is None:
            scenario = spec.build()
        self.scenario = scenario
        self.spec = scenario.spec
        self.simulation = scenario.simulation
        self._step = 0
        self._pending: list = []
        self._seen_request_ids: set[str] = set()
        self._injected_count = 0
        self._deltas: list[PlanDelta] = []
        self._last_executed: dict[int, int] = {}
        self._stack: contextlib.ExitStack | None = None
        self._report: SimulationReport | None = None
        self._satellite_ids = {
            s.satellite_id for s in self.simulation.satellites
        }
        self._station_ids = {
            st.station_id for st in self.simulation.network
        }

    # -- clock --------------------------------------------------------------

    @property
    def step(self) -> int:
        """The next step index :meth:`advance` will execute."""
        return self._step

    @property
    def now(self) -> datetime:
        """The wall clock at the session's current position."""
        cfg = self.simulation.config
        return cfg.start + timedelta(seconds=self._step * cfg.step_s)

    @property
    def horizon_steps(self) -> int:
        return self.simulation.config.num_steps

    @property
    def finished(self) -> bool:
        """Whether :meth:`finalize` has produced the report."""
        return self._report is not None

    # -- event intake -------------------------------------------------------

    def ingest(self, events) -> list[dict]:
        """Validate and queue events for the next tick, atomically.

        Every event is validated before any is queued: one bad event
        rejects the whole batch with ``ValueError`` and queues nothing.
        Returns one acknowledgement dict per event; a re-submitted
        ``SubmitRequest.request_id`` is acknowledged as ``"duplicate"``
        and not queued again (idempotent submission).
        """
        if self._report is not None:
            raise RuntimeError("session is finalized; no further events")
        events = list(events)
        for event in events:
            self._validate(event)
        acks = []
        for event in events:
            if isinstance(event, SubmitRequest):
                if event.request_id in self._seen_request_ids:
                    acks.append({"event": "submit_request",
                                 "request_id": event.request_id,
                                 "status": "duplicate"})
                    continue
                self._seen_request_ids.add(event.request_id)
                acks.append({"event": "submit_request",
                             "request_id": event.request_id,
                             "status": "queued"})
            elif isinstance(event, QuotaUpdate):
                acks.append({"event": "quota_update",
                             "tenant_id": event.tenant_id,
                             "status": "queued"})
            else:
                acks.append({"event": "outage_notice",
                             "station_id": event.station_id,
                             "status": "queued"})
            self._pending.append(event)
        return acks

    def _tenant_ids(self) -> set[str]:
        demand = self.simulation.demand
        if demand is None:
            return set()
        return {t.tenant_id for t in demand.tenants}

    def _validate(self, event) -> None:
        if not isinstance(event, _EVENT_TYPES):
            raise ValueError(
                f"unknown event type {type(event).__name__!r}; expected "
                "SubmitRequest, QuotaUpdate, or OutageNotice"
            )
        if isinstance(event, (SubmitRequest, QuotaUpdate)):
            if self.simulation.demand is None:
                raise ValueError(
                    f"{type(event).__name__} needs a tenanted scenario "
                    "(ScenarioSpec(tenants=...))"
                )
            if event.tenant_id not in self._tenant_ids():
                raise ValueError(f"unknown tenant {event.tenant_id!r}")
        if isinstance(event, SubmitRequest):
            if not event.request_id:
                raise ValueError("SubmitRequest.request_id must be non-empty")
            if event.satellite_id not in self._satellite_ids:
                raise ValueError(
                    f"unknown satellite {event.satellite_id!r}"
                )
            if event.chunks < 1:
                raise ValueError("SubmitRequest.chunks must be >= 1")
        elif isinstance(event, QuotaUpdate):
            if event.quota_gb_per_day < 0.0:
                raise ValueError("quota_gb_per_day must be >= 0")
        elif isinstance(event, OutageNotice):
            if event.station_id not in self._station_ids:
                raise ValueError(f"unknown station {event.station_id!r}")
            if event.end <= event.start:
                raise ValueError("outage must end after it starts")
            sim = self.simulation
            if sim.outages is not None and not sim.outages_announced:
                raise ValueError(
                    "cannot announce outages over an unannounced "
                    "OutageSchedule"
                )

    # -- ticking ------------------------------------------------------------

    def _start(self) -> None:
        """Open the run exactly as the batch path does."""
        sim = self.simulation
        rec = sim.obs
        if rec.enabled:
            rec.start_run(build_manifest(
                config=sim.config,
                seeds=rec.config.seeds,
                extra=rec.config.manifest_extra,
            ))
        sim._begin_loop()
        self._stack = contextlib.ExitStack()
        self._stack.enter_context(rec.span("run"))

    def _apply(self, event) -> None:
        sim = self.simulation
        if isinstance(event, SubmitRequest):
            from repro.demand import DownlinkRequest

            tenant = next(
                t for t in sim.demand.tenants
                if t.tenant_id == event.tenant_id
            )
            self._injected_count += 1
            request = DownlinkRequest(
                # Injected ids number their own sequence, disjoint from
                # the seeded per-satellite streams (which count up from
                # zero) so stamped chunks stay attributable.
                request_id=-self._injected_count,
                tenant_id=event.tenant_id,
                priority=(
                    float(tenant.tier) if event.priority is None
                    else float(event.priority)
                ),
                region=event.region,
                sla_deadline_s=(
                    tenant.sla_deadline_s if event.sla_deadline_s is None
                    else float(event.sla_deadline_s)
                ),
            )
            sim.demand.assigner.inject(
                event.satellite_id, request, chunks=event.chunks
            )
        elif isinstance(event, QuotaUpdate):
            sim.demand.accountant.set_quota(
                event.tenant_id, event.quota_gb_per_day
            )
        elif isinstance(event, OutageNotice):
            sim.announce_outage(event.station_id, event.start, event.end)

    def advance(self, until: datetime | None = None, *,
                steps: int | None = None) -> list[PlanDelta]:
        """Execute ticks up to ``until`` (exclusive) or for ``steps`` ticks.

        With neither argument, advances one tick.  Pending events apply
        at the first tick boundary; in planned execution mode an applied
        event also forces the next plan issue so the re-plan sees it.
        Returns the :class:`PlanDelta` entries the ticks produced.
        Advancing past the configured horizon stops at the horizon.
        """
        if self._report is not None:
            raise RuntimeError("session is finalized; no further ticks")
        if until is not None and steps is not None:
            raise TypeError("advance takes at most one of until= or steps=")
        cfg = self.simulation.config
        if until is not None:
            target = int(
                (until - cfg.start).total_seconds() // cfg.step_s
            )
        elif steps is not None:
            if steps < 0:
                raise ValueError("steps must be >= 0")
            target = self._step + steps
        else:
            target = self._step + 1
        target = min(target, cfg.num_steps)
        if self._stack is None and self._step < target:
            self._start()
        sim = self.simulation
        first_seq = len(self._deltas)
        while self._step < target:
            if self._pending:
                for event in self._pending:
                    self._apply(event)
                self._pending.clear()
                if cfg.execution_mode == "planned":
                    # Force a plan re-issue at this tick so the new
                    # demand/outage state reaches the stations' plan.
                    sim._next_plan_issue = self.now
            executed = sim._step_once(self._step)
            self._record_delta(self._step, executed)
            self._step += 1
        return self._deltas[first_seq:]

    def _record_delta(self, step: int, executed: dict[int, int]) -> None:
        sim = self.simulation
        previous = self._last_executed
        assigned = [
            (sim.satellites[i].satellite_id,
             sim.network[j].station_id)
            for i, j in executed.items() if previous.get(i) != j
        ]
        released = [
            (sim.satellites[i].satellite_id,
             sim.network[j].station_id)
            for i, j in previous.items() if executed.get(i) != j
        ]
        self._last_executed = dict(executed)
        if not assigned and not released:
            return
        self._deltas.append(PlanDelta(
            seq=len(self._deltas) + 1,
            step=step,
            when=sim._now.isoformat(),
            assigned=tuple(sorted(assigned)),
            released=tuple(sorted(released)),
        ))

    # -- reads --------------------------------------------------------------

    def plan(self) -> list[dict]:
        """The currently executing links, sorted by satellite id."""
        sim = self.simulation
        return sorted(
            (
                {"satellite_id": sim.satellites[i].satellite_id,
                 "station_id": sim.network[j].station_id}
                for i, j in self._last_executed.items()
            ),
            key=lambda link: link["satellite_id"],
        )

    def plan_deltas(self, since: int = 0) -> list[PlanDelta]:
        """Deltas with ``seq > since`` (``since=0`` returns the full log)."""
        if since < 0:
            raise ValueError("since must be >= 0")
        return [d for d in self._deltas if d.seq > since]

    def snapshot(self) -> dict:
        """The session's current position and queue/backlog state."""
        sim = self.simulation
        return {
            "step": self._step,
            "horizon_steps": self.horizon_steps,
            "now": self.now.isoformat(),
            "finished": self.finished,
            "pending_events": len(self._pending),
            "delta_seq": len(self._deltas),
            "delivered_bits": sim.metrics.delivered_bits,
            "generated_bits": sim.metrics.generated_bits,
            "backlog_gb": {
                s.satellite_id: s.storage.true_backlog_bits / GB_TO_BITS
                for s in sim.satellites
            },
        }

    # -- completion ---------------------------------------------------------

    def finalize(self) -> SimulationReport:
        """Drain the backend, close the run, and build the report.

        Mirrors the batch path's end-of-run sequence stage for stage,
        which is what keeps an event-free session's report byte-identical
        to ``Simulation.run()``.  Idempotent: later calls return the same
        report.
        """
        if self._report is not None:
            return self._report
        sim = self.simulation
        rec = sim.obs
        if self._stack is None:
            # A session finalized before any tick still opens/closes the
            # run bracket so traces and manifests stay well-formed.
            self._start()
        try:
            sim._drain_backend()
        finally:
            self._stack.close()
        if rec.enabled:
            sim._record_component_stats()
        self._report = sim._finalize_report()
        rec.finish_run(
            fault_counters=(
                sim.fault_counters.as_dict()
                if sim.faults is not None else None
            ),
            status="ok",
            delivered_bits=self._report.delivered_bits,
            generated_bits=self._report.generated_bits,
        )
        return self._report

    def run_to_horizon(self) -> SimulationReport:
        """Advance through every remaining tick and finalize."""
        self.advance(steps=self.horizon_steps - self._step)
        return self.finalize()
