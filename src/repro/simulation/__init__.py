"""Discrete-time data-transfer simulation (the paper's evaluation engine).

Ties everything together: at each step the scheduler matches satellites to
stations, the engine transfers bits at the *truth-weather* rate (the plan
was made on forecasts -- over-predicted rates lose the transmission, the
core risk of ack-free downlink), receipts flow to the backend over the
Internet, and transmit-capable contacts upload plans and collated acks.

Outputs are the paper's metrics: per-chunk capture-to-delivery latency,
end-of-run per-satellite backlog, and totals.
"""

from repro.simulation.config import SimulationConfig
from repro.simulation.faults import Outage, OutageSchedule
from repro.simulation.metrics import MetricsCollector, SimulationReport
from repro.simulation.engine import Simulation
from repro.simulation.session import (
    OutageNotice,
    PlanDelta,
    QuotaUpdate,
    SimulationSession,
    SubmitRequest,
)

__all__ = [
    "SimulationConfig",
    "MetricsCollector",
    "SimulationReport",
    "Simulation",
    "SimulationSession",
    "SubmitRequest",
    "QuotaUpdate",
    "OutageNotice",
    "PlanDelta",
    "Outage",
    "OutageSchedule",
]
