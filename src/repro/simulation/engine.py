"""The discrete-time data-transfer simulation engine.

Each step (default 60 s, the cadence at which the paper re-runs stable
matching):

1. satellites capture imagery (100 GB/day default);
2. in-flight Internet receipts land at the backend;
3. the scheduler matches the contact graph (on forecast weather when
   configured, otherwise truth);
4. matched satellites transmit at the *planned* rate -- if truth weather
   is worse than the forecast the ground cannot decode and the bits are
   lost (ack-free downlink's failure mode);
5. successfully decoded chunk completions become receipts to the backend;
6. transmit-capable contacts upload a plan timestamp and the collated ack
   batch; stale unacked chunks are requeued for retransmission.

The engine mutates the satellites' storage in place; run a fresh fleet
per experiment variant (``repro.core`` scenario helpers do this).
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np

from repro.faults import FaultCounters, FaultSchedule
from repro.groundstations.network import GroundStationNetwork
from repro.linkbudget.decode import decode_probability
from repro.network.backend import BackendCollator
from repro.network.diversity import DiversityCombiner
from repro.network.messages import ChunkReceiptMessage
from repro.obs import ObsConfig, build_manifest, make_recorder
from repro.orbits.ephemeris import EphemerisTable, shared_ephemeris_table
from repro.orbits.sgp4 import SGP4Error
from repro.satellites.data import ChunkIdAllocator
from repro.satellites.satellite import Satellite
from repro.scheduling.matching import Assignment
from repro.scheduling.scheduler import DownlinkScheduler
from repro.scheduling.windows import shared_window_index
from repro.scheduling.value_functions import ValueFunction
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import GB_TO_BITS, MetricsCollector, SimulationReport
from repro.weather.forecast import ForecastProvider
from repro.weather.provider import ClearSkyProvider, WeatherProvider


class Simulation:
    """One configured data-transfer simulation.

    All constructor arguments are keyword-only; ``satellites``,
    ``network``, ``value_function``, and ``config`` are required.
    """

    def __init__(
        self,
        *args,
        satellites: list[Satellite] | None = None,
        network: GroundStationNetwork | None = None,
        value_function: ValueFunction | None = None,
        config: SimulationConfig | None = None,
        truth_weather: WeatherProvider | None = None,
        forecast: ForecastProvider | None = None,
        capacities: list[int] | None = None,
        outages: "OutageSchedule | None" = None,
        outages_announced: bool = False,
        faults: FaultSchedule | None = None,
        faults_announced: bool = True,
        fault_availability_prior: float | None = None,
        demand: "DemandLayer | None" = None,
        observability: ObsConfig | None = None,
    ):
        if args:
            raise TypeError(
                "Simulation() no longer accepts positional arguments (the "
                "PR-3 deprecation shim was removed); pass satellites=, "
                "network=, value_function=, config= (and truth_weather=) as "
                "keywords, or describe the run with repro.ScenarioSpec"
            )
        missing = [
            name for name, value in (
                ("satellites", satellites), ("network", network),
                ("value_function", value_function), ("config", config),
            ) if value is None
        ]
        if missing:
            raise TypeError(
                "Simulation missing required keyword arguments: "
                + ", ".join(f"{name}=" for name in missing)
            )
        #: The run's recorder: a live :class:`repro.obs.Recorder` when an
        #: enabled ObsConfig was passed, the shared no-op otherwise.
        self.obs = make_recorder(observability)
        self.satellites = satellites
        self.network = network
        self.config = config
        self.outages = outages
        #: Announced outages (maintenance) are known to the scheduler, so
        #: it routes around them; unannounced failures waste the pass.
        self.outages_announced = outages_announced
        #: The seeded fault-injection layer (None = healthy run; the
        #: engine then behaves bit-identically to a build without it).
        self.faults = faults
        #: Announced faults let the scheduler prune/down-weight edges to
        #: faulted stations; unannounced ones are discovered the hard way.
        self.faults_announced = faults_announced
        #: With a prior p in (0, 1], edges to hard-down announced stations
        #: survive at weight * p -- the scheduler gambles the station may
        #: recover -- instead of being pruned outright.
        self.fault_availability_prior = fault_availability_prior
        self.fault_counters = FaultCounters()
        #: Diversity-reception combiner (``execution_mode="diversity"``
        #: only; None otherwise, so every other mode's report is
        #: byte-identical to builds without the diversity layer).
        self.diversity = (
            DiversityCombiner(seed=config.diversity_seed)
            if config.execution_mode == "diversity" else None
        )
        #: Chunk ids whose first decoded delivery has been recorded; a
        #: redelivery (receipt lost in a partition -> requeue ->
        #: retransmit) must not double-count delivered bits or latency.
        self._delivered_chunk_ids: set[int] = set()
        #: The multi-tenant demand layer (None = the legacy uniform
        #: single-tenant stream; the engine then behaves bit-identically
        #: to a build without it).
        self.demand = demand
        # Per-simulation chunk numbering: ids restart per run instead of
        # continuing a process-global counter, so two in-process runs of
        # the same scenario produce identical reports.  Starting above
        # any pre-existing id keeps ids fleet-unique (the delivered-chunk
        # dedup set above requires that) even when data was generated
        # before this Simulation existed.
        existing_ids = [
            chunk.chunk_id
            for sat in satellites for chunk in sat.storage.all_chunks()
        ]
        self._chunk_ids = ChunkIdAllocator(
            max(existing_ids) + 1 if existing_ids else 0
        )
        for sat in satellites:
            sat.chunk_ids = self._chunk_ids
            if demand is not None:
                sat.demand = demand.assigner
        self.truth_weather = truth_weather or ClearSkyProvider()
        if config.use_forecast and forecast is None:
            forecast = ForecastProvider(self.truth_weather)
        self.forecast = forecast
        scheduler_weather = forecast if config.use_forecast else self.truth_weather
        station_available = None
        if outages is not None and outages_announced:
            def station_available(index: int, when) -> bool:
                return not outages.is_down(network[index].station_id, when)
        station_weight = None
        if faults is not None and faults_announced:
            # Single-penalty contract: this factor prices *fault*
            # availability only, and the graph applies it exactly once as
            # the edge's weight_factor.  Weather never enters here -- rain
            # already discounts the same edge through the link budget's
            # attenuation -- so a station inside a storm cell AND under an
            # injected outage is discounted once for each cause, not
            # twice for either (pinned by
            # tests/faults/test_weather_fault_interaction.py).
            def station_weight(index: int, when) -> float:
                availability = faults.station_availability(
                    network[index].station_id, when
                )
                if availability <= 0.0:
                    # Hard down: prune, unless a prior keeps a gamble edge.
                    return fault_availability_prior or 0.0
                return availability
        with self.obs.span("ephemeris_build"):
            self.ephemeris = self._build_ephemeris(
                satellites, config, recorder=self.obs
            )
        self.scheduler = DownlinkScheduler(
            satellites=satellites,
            network=network,
            value_function=value_function,
            matcher=config.matcher,
            weather=scheduler_weather,
            step_s=config.step_s,
            capacities=capacities,
            acm_margin_db=config.acm_margin_db,
            require_current_plan=config.enforce_plan_distribution,
            plan_max_age_s=config.plan_max_age_s,
            station_available=station_available,
            station_weight=station_weight,
            ephemeris=self.ephemeris,
            batched=config.batched_kernels,
            spatial_culling=config.spatial_culling,
            recorder=self.obs,
        )
        # Precompute the pass structure once: candidate generation per
        # step becomes an index lookup and idle ticks (no pair in a pass)
        # skip scheduling entirely -- byte-identical either way.  Needs
        # the batched path and a precomputed ephemeris; inert otherwise.
        self.window_index = None
        if (
            config.contact_windows
            and config.batched_kernels
            and self.ephemeris is not None
        ):
            index_steps = config.num_steps
            if config.execution_mode == "planned":
                index_steps += int(config.plan_horizon_s // config.step_s) + 1
            with self.obs.span("window_index_build"):
                self.window_index = shared_window_index(
                    satellites,
                    network,
                    start=config.start,
                    num_steps=index_steps,
                    step_s=config.step_s,
                    geometry=self.scheduler._geometry,
                    ephemeris=self.ephemeris,
                    culling=self.scheduler._culling_grid,
                    link_budget_for=self.scheduler._link_budget_for,
                    pair_groups=self.scheduler._pair_groups,
                    recorder=self.obs,
                )
            self.scheduler.window_index = self.window_index
        self.backend = BackendCollator()
        self.metrics = MetricsCollector()
        from repro.simulation.events import EventLog

        self.events = EventLog() if config.record_events else None
        # Vectorized imagery accumulator (see :meth:`_generate`); filled
        # lazily so standalone constructions stay cheap.
        self._gen_acc = None
        self._gen_per_step = None
        self._gen_chunk_bits = None
        self._gen_active = None
        self._power_enabled = any(s.power is not None for s in satellites)
        self._sunlit: dict[int, bool] = {}
        self._transmitted_this_step: set[int] = set()
        self.power_blocked_steps = 0
        self._previous_links: dict[int, int] = {}
        #: Count of satellite->station link changes across the whole run
        #: (antenna slews the network performed); exposed for churn
        #: analysis of matching policies.
        self.link_changes = 0
        # Planned-execution state (config.execution_mode == "planned").
        self._latest_plan = None  # what stations follow (Internet-fresh)
        self._satellite_plans: dict[int, object] = {}  # what satellites hold
        self._next_plan_issue = config.start
        #: Steps where a satellite transmitted per its (stale) plan at a
        #: station that was no longer pointing at it.
        self.plan_mismatch_steps = 0
        # Stepped-lifecycle state (set by _begin_loop, advanced by
        # _step_once): the wall clock of the last executed step and the
        # last forecast issue time.  run() and SimulationSession drive
        # the same four stages, so both paths share these.
        self._now = config.start
        self._last_forecast_issue = config.start

    @staticmethod
    def _build_ephemeris(satellites: list[Satellite],
                         config: SimulationConfig,
                         recorder=None) -> "EphemerisTable | None":
        """Batch-propagate the fleet over the run's scheduling grid.

        Planned execution looks ahead a plan horizon past the last step,
        so the table covers that too.  A fleet that decays mid-horizon
        falls back to lazy per-satellite propagation (which raises at the
        offending step, as the scalar path always did).
        """
        if not config.precompute_ephemeris or not satellites:
            return None
        steps = config.num_steps
        if config.execution_mode == "planned":
            steps += int(config.plan_horizon_s // config.step_s) + 1
        try:
            if config.ephemeris_window_steps > 0:
                from repro.orbits.ephemeris import StreamingEphemerisTable

                return StreamingEphemerisTable(
                    satellites, config.start, steps, config.step_s,
                    window_steps=config.ephemeris_window_steps,
                    dtype=config.ephemeris_dtype,
                    recorder=recorder,
                )
            return shared_ephemeris_table(
                satellites, config.start, steps, config.step_s,
                dtype=config.ephemeris_dtype,
                recorder=recorder,
            )
        except SGP4Error:
            return None

    # -- mid-run control inputs ---------------------------------------------

    def announce_outage(self, station_id: str, start: datetime,
                        end: datetime) -> None:
        """Register a station maintenance window announced mid-run.

        The window is appended to the simulation's (announced) outage
        schedule and the scheduler routes around it from the next
        scheduling pass.  A simulation configured with an *unannounced*
        schedule refuses the call: a notice cannot retroactively make
        surprise failures known to the scheduler.
        """
        from repro.simulation.faults import Outage, OutageSchedule

        if self.outages is not None and not self.outages_announced:
            raise ValueError(
                "cannot announce outages on a simulation configured with "
                "an unannounced OutageSchedule"
            )
        known = {st.station_id for st in self.network}
        if station_id not in known:
            raise ValueError(f"unknown station {station_id!r}")
        if self.outages is None:
            self.outages = OutageSchedule()
            self.outages_announced = True
            network = self.network
            outages = self.outages

            def station_available(index: int, when) -> bool:
                return not outages.is_down(network[index].station_id, when)

            self.scheduler.station_available = station_available
        self.outages.add(Outage(station_id, start, end))

    # -- main loop --------------------------------------------------------------

    def run(self) -> SimulationReport:
        """Execute the configured run and return the report."""
        cfg = self.config
        rec = self.obs
        if rec.enabled:
            rec.start_run(build_manifest(
                config=cfg,
                seeds=rec.config.seeds,
                extra=rec.config.manifest_extra,
            ))
        try:
            report = self._run_observed()
        except BaseException:
            rec.finish_run(status="error")
            raise
        rec.finish_run(
            fault_counters=(
                self.fault_counters.as_dict()
                if self.faults is not None else None
            ),
            status="ok",
            delivered_bits=report.delivered_bits,
            generated_bits=report.generated_bits,
        )
        return report

    def _run_observed(self) -> SimulationReport:
        """The main loop, staged under the recorder's ``run`` span.

        The batch path is just the stepped lifecycle driven to the
        horizon in one go: :meth:`_begin_loop`, then
        :meth:`_step_once` per step, then :meth:`_drain_backend` and
        :meth:`_finalize_report`.  :class:`SimulationSession` drives
        the identical stages tick by tick, which is what makes the
        replay-equivalence guarantee hold by construction.
        """
        cfg = self.config
        rec = self.obs
        self._begin_loop()
        with rec.span("run"):
            for k in range(cfg.num_steps):
                self._step_once(k)
            self._drain_backend()
        if rec.enabled:
            self._record_component_stats()
        return self._finalize_report()

    def _begin_loop(self) -> None:
        """Reset the stepped-lifecycle clock to the configured start."""
        self._now = self.config.start
        self._last_forecast_issue = self.config.start

    def _step_once(self, k: int) -> dict[int, int]:
        """Advance the simulation by exactly one step (index ``k``).

        Must run inside the recorder's ``run`` span after
        :meth:`_begin_loop`.  Returns the executed satellite->station
        links for the step.
        """
        cfg = self.config
        rec = self.obs
        now = cfg.start + timedelta(seconds=k * cfg.step_s)
        self._now = now
        with rec.span("generate"):
            self._generate(now)
        with rec.span("backend_advance"):
            self.backend.advance(now)
        if cfg.use_forecast and (
            (now - self._last_forecast_issue).total_seconds()
            >= cfg.forecast_refresh_s
        ):
            self._last_forecast_issue = now
        self._transmitted_this_step = set()
        # Idle-tick fast-forward: when the contact-window index says zero
        # pairs are in a pass right now, the contact graph is empty by
        # construction -- an empty graph samples no weather, touches no
        # queue profile, and matches nothing -- so skipping link budget,
        # graph build, and matching outright is byte-identical.  Only the
        # scheduler that owns the index may skip (horizon/beamforming
        # replacements keep internal replan counters that must tick), and
        # planned mode never skips (plan issue ticks are time-driven).
        skip_idle = False
        if cfg.execution_mode != "planned":
            window_index = getattr(self.scheduler, "window_index", None)
            if window_index is not None:
                ki = window_index.step_of(now)
                if ki is not None and window_index.active_count(ki) == 0:
                    skip_idle = True
                    if rec.enabled:
                        rec.counter("idle_ticks_skipped")
        if cfg.execution_mode == "planned":
            with rec.span("plan_execution"):
                executed = self._planned_step(now)
        elif skip_idle:
            executed = {}
        elif cfg.execution_mode == "diversity":
            # Live matching plus extra listeners: the matched primary
            # transmits as usual while otherwise-idle stations that can
            # see the satellite record the same stream; the backend
            # combiner keeps whichever copy decodes.
            with rec.span("schedule"):
                step = self.scheduler.schedule_step(
                    now,
                    forecast_issued_at=(
                        self._last_forecast_issue if cfg.use_forecast
                        else None
                    ),
                    keep_graph=True,
                )
            with rec.span("execute"):
                from repro.scheduling.matching import diversity_groups

                groups = diversity_groups(
                    step.graph, step.assignments, cfg.diversity_receivers
                )
                for assignment in step.assignments:
                    self._execute_diversity(
                        assignment,
                        groups.get(assignment.satellite_index, []),
                        now,
                    )
            executed = {
                a.satellite_index: a.station_index
                for a in step.assignments
            }
        else:
            with rec.span("schedule"):
                step = self.scheduler.schedule_step(
                    now,
                    forecast_issued_at=(
                        self._last_forecast_issue if cfg.use_forecast
                        else None
                    ),
                )
            with rec.span("execute"):
                for assignment in step.assignments:
                    self._execute_assignment(assignment, now)
            executed = {
                a.satellite_index: a.station_index
                for a in step.assignments
            }
        with rec.span("bookkeeping"):
            if self._power_enabled:
                self._update_power(now, k)
            self.metrics.record_step(len(executed))
            self._record_churn(executed)
            self._previous_links = executed
            if cfg.snapshot_every_steps \
                    and k % cfg.snapshot_every_steps == 0:
                self.metrics.record_snapshot(
                    now,
                    {s.satellite_id:
                     s.storage.true_backlog_bits / GB_TO_BITS
                     for s in self.satellites},
                    {s.satellite_id:
                     s.storage.stored_bits / GB_TO_BITS
                     for s in self.satellites},
                )
        if rec.enabled:
            rec.event("step", step=k, when=now.isoformat(),
                      matched=len(executed))
        return executed

    def _drain_backend(self) -> None:
        """Land any receipts still in flight so totals are conserved.

        Flushes to the latest outstanding arrival, not a fixed horizon,
        so fault-injected latency spikes cannot strand receipts past the
        drain.
        """
        with self.obs.span("drain"):
            self.backend.advance(self.backend.flush_horizon(self._now))

    def _finalize_report(self) -> SimulationReport:
        """Close the books at the current clock and build the report."""
        now = self._now
        tenant_reports: dict[str, dict] = {}
        tenant_fairness = None
        if self.demand is not None:
            self.demand.accountant.record_run_end(self.satellites, now)
            tenant_reports = self.demand.accountant.summary()
            tenant_fairness = self.demand.accountant.fairness_index()
        return self.metrics.finalize(
            final_backlog_gb={
                s.satellite_id: s.storage.true_backlog_bits / GB_TO_BITS
                for s in self.satellites
            },
            final_unacked_gb={
                s.satellite_id: s.storage.unacked_bits / GB_TO_BITS
                for s in self.satellites
            },
            fault_counters=(
                self.fault_counters.as_dict()
                if self.faults is not None else None
            ),
            stage_timings=self.obs.stage_timings(),
            link_changes=self.link_changes,
            plan_mismatch_steps=self.plan_mismatch_steps,
            tenant_reports=tenant_reports,
            tenant_fairness=tenant_fairness,
            diversity=(
                self.diversity.as_dict()
                if self.diversity is not None else None
            ),
        )

    def _record_component_stats(self) -> None:
        """End-of-run gauges and cache events from the engine's parts."""
        rec = self.obs
        for name, stat in self.backend.stats().items():
            rec.gauge(f"backend/{name}", stat)
        for label, provider in (("truth_weather", self.truth_weather),
                                ("forecast", self.forecast)):
            hits = getattr(provider, "hits", None)
            misses = getattr(provider, "misses", None)
            if hits is None or misses is None:
                continue
            rec.gauge(f"weather_cache/{label}/hits", hits)
            rec.gauge(f"weather_cache/{label}/misses", misses)
            rec.event("cache", name=f"weather/{label}",
                      hits=int(hits), misses=int(misses))
        counters = rec.counters_snapshot()
        rec.event(
            "cache", name="ephemeris",
            hits=int(counters.get("ephemeris_cache/memory_hit", 0)
                     + counters.get("ephemeris_cache/disk_hit", 0)
                     + counters.get("ephemeris_cache/shm_hit", 0)),
            misses=int(counters.get("ephemeris_cache/build", 0)),
            shm_hits=int(counters.get("ephemeris_cache/shm_hit", 0)),
        )

    # -- step pieces --------------------------------------------------------------

    def _generate(self, now: datetime) -> None:
        # Capture covers the interval that just elapsed, (now - step, now],
        # so no chunk's capture time is in the future of the transmissions
        # happening at ``now``.
        #
        # Chunk boundaries are rare (a satellite emits a handful of chunks
        # a day over 1440 steps), so the per-satellite accumulator runs as
        # one vectorized add here and ``generate_data`` is only entered on
        # boundary-crossing steps.  float64 elementwise adds are the same
        # IEEE operations the scalar accumulator performs, so emission
        # steps, capture times, and chunk ids are bit-identical.
        interval_start = now - timedelta(seconds=self.config.step_s)
        step_s = self.config.step_s
        if self._gen_acc is None:
            rates = [
                s.generation_gb_per_day * GB_TO_BITS / 86400.0
                for s in self.satellites
            ]
            self._gen_per_step = np.array([r * step_s for r in rates])
            self._gen_chunk_bits = np.array(
                [s.chunk_size_gb * GB_TO_BITS for s in self.satellites]
            )
            self._gen_active = np.array([r > 0.0 for r in rates])
            self._gen_acc = np.array(
                [s._accumulated_bits for s in self.satellites]
            )
        total = self._gen_acc + self._gen_per_step
        emitting = self._gen_active & (total >= self._gen_chunk_bits)
        for i in np.flatnonzero(emitting).tolist():
            sat = self.satellites[i]
            sat._accumulated_bits = float(self._gen_acc[i])
            chunks = sat.generate_data(interval_start, step_s)
            total[i] = sat._accumulated_bits
            for chunk in chunks:
                self.metrics.record_generation(chunk.size_bits)
                if self.demand is not None:
                    self.demand.accountant.record_generation(chunk)
        self._gen_acc = total

    def _execute_assignment(self, assignment, now: datetime) -> None:
        sat = self.satellites[assignment.satellite_index]
        station = self.network[assignment.station_index]
        rec = self.obs
        if self.outages is not None and self.outages.is_down(
            station.station_id, now
        ):
            # The station is dark.  With unannounced failures the satellite
            # still transmits per plan and every bit is wasted; announced
            # outages were already filtered out of the contact graph.
            bits_budget = assignment.bitrate_bps * self.config.step_s
            sent, _completed = sat.storage.transmit(
                bits_budget, now, decoded=False
            )
            self.metrics.record_lost_transmission(sent)
            if rec.enabled:
                rec.event("assignment", when=now.isoformat(),
                          satellite_id=sat.satellite_id,
                          station_id=station.station_id,
                          bitrate_bps=assignment.bitrate_bps,
                          decoded=False, bits=sent)
            return
        availability = 1.0
        if self.faults is not None:
            availability = self.faults.station_availability(
                station.station_id, now
            )
            if availability <= 0.0:
                # Injected hard outage.  Announced ones are normally pruned
                # from the graph, but an availability prior can keep the
                # edge as a gamble; unannounced ones always land here.  The
                # satellite transmits per plan and every bit is wasted.
                self.fault_counters.station_outage_steps += 1
                sent, _completed = sat.storage.transmit(
                    assignment.bitrate_bps * self.config.step_s, now,
                    decoded=False,
                )
                self.metrics.record_lost_transmission(sent)
                if rec.enabled:
                    rec.event("fault", when=now.isoformat(),
                              fault="station_outage",
                              satellite_id=sat.satellite_id,
                              station_id=station.station_id)
                    rec.event("assignment", when=now.isoformat(),
                              satellite_id=sat.satellite_id,
                              station_id=station.station_id,
                              bitrate_bps=assignment.bitrate_bps,
                              decoded=False, bits=sent)
                return
        if sat.power is not None and not sat.power.can_transmit():
            # Flight rules: battery too low to power the radio this pass.
            self.power_blocked_steps += 1
            return
        self._transmitted_this_step.add(assignment.satellite_index)
        decoded = True
        # Antenna slew/acquisition: a station that just switched to this
        # satellite loses part of the step before bits flow.
        usable_fraction = 1.0
        if self.config.acquisition_overhead_s > 0.0:
            previously = self._previous_links.get(assignment.satellite_index)
            if previously != assignment.station_index:
                usable_fraction = 1.0 - (
                    self.config.acquisition_overhead_s / self.config.step_s
                )
        if self.config.use_forecast:
            decoded = self._decodes_under_truth(assignment, sat, station, now)
        if self.faults is not None and decoded:
            if self.faults.is_undecoded(station.station_id, now):
                # Ground-side decode fault: the pass happens, nothing lands.
                decoded = False
                self.fault_counters.undecoded_steps += 1
                if rec.enabled:
                    rec.event("fault", when=now.isoformat(),
                              fault="undecoded",
                              satellite_id=sat.satellite_id,
                              station_id=station.station_id)
            elif self.faults.is_tle_stale(sat.satellite_id, now):
                # Stale elements degrade pointing; the transmission fails.
                decoded = False
                self.fault_counters.stale_tle_steps += 1
                if rec.enabled:
                    rec.event("fault", when=now.isoformat(),
                              fault="stale_tle",
                              satellite_id=sat.satellite_id,
                              station_id=station.station_id)
        bits_budget = assignment.bitrate_bps * self.config.step_s * usable_fraction
        if availability < 1.0:
            # Partial outage: the pass proceeds at reduced capacity.
            bits_budget *= availability
            self.fault_counters.partial_outage_steps += 1
            if rec.enabled:
                rec.event("fault", when=now.isoformat(),
                          fault="partial_outage",
                          satellite_id=sat.satellite_id,
                          station_id=station.station_id)
        sent, completed = sat.storage.transmit(bits_budget, now, decoded=decoded)
        if rec.enabled:
            rec.event("assignment", when=now.isoformat(),
                      satellite_id=sat.satellite_id,
                      station_id=station.station_id,
                      bitrate_bps=assignment.bitrate_bps,
                      decoded=decoded, bits=sent)
        if self.events is not None and sent > 0:
            self.events.record(
                now, "transmission", sat.satellite_id, station.station_id,
                bits=sent, bitrate_bps=assignment.bitrate_bps, decoded=decoded,
            )
        if decoded:
            backhaul_fault = None
            if self.faults is not None:
                backhaul_fault = self.faults.backhaul_fault(
                    station.station_id, now
                )
            for chunk in completed:
                if chunk.chunk_id not in self._delivered_chunk_ids:
                    self._delivered_chunk_ids.add(chunk.chunk_id)
                    latency = (now - chunk.capture_time).total_seconds()
                    self.metrics.record_delivery(
                        sat.satellite_id, latency, chunk.size_bits,
                        station.station_id,
                    )
                    if self.demand is not None:
                        self.demand.accountant.record_delivery(chunk, now)
                    if self.events is not None:
                        self.events.record(
                            now, "delivery", sat.satellite_id,
                            station.station_id, chunk_id=chunk.chunk_id,
                            latency_s=latency, bits=chunk.size_bits,
                        )
                    if rec.enabled:
                        rec.event("delivery", when=now.isoformat(),
                                  satellite_id=sat.satellite_id,
                                  station_id=station.station_id,
                                  chunk_id=chunk.chunk_id,
                                  latency_s=latency, bits=chunk.size_bits)
                else:
                    # The ground already has this chunk (its first receipt
                    # was lost, so the satellite retransmitted): unique
                    # delivered bits and latency are not recounted.
                    self.fault_counters.redelivered_chunks += 1
                    if rec.enabled:
                        rec.event("fault", when=now.isoformat(),
                                  fault="redelivery",
                                  satellite_id=sat.satellite_id,
                                  station_id=station.station_id)
                if backhaul_fault is not None and backhaul_fault.partitioned:
                    # The station cannot reach the backend: the receipt is
                    # lost.  The ack never happens, so the ack-timeout
                    # requeue path retransmits the chunk later.
                    self.fault_counters.receipts_dropped += 1
                    if rec.enabled:
                        rec.event("fault", when=now.isoformat(),
                                  fault="receipt_dropped",
                                  satellite_id=sat.satellite_id,
                                  station_id=station.station_id)
                    continue
                backhaul_latency_s = station.backhaul_latency_s
                if backhaul_fault is not None:
                    backhaul_latency_s += backhaul_fault.extra_latency_s
                    self.fault_counters.receipts_delayed += 1
                    if rec.enabled:
                        rec.event("fault", when=now.isoformat(),
                                  fault="receipt_delayed",
                                  satellite_id=sat.satellite_id,
                                  station_id=station.station_id)
                self.backend.submit_receipt(
                    ChunkReceiptMessage(
                        station_id=station.station_id,
                        satellite_id=sat.satellite_id,
                        chunk_id=chunk.chunk_id,
                        received_at=now,
                        size_bits=chunk.size_bits,
                    ),
                    backhaul_latency_s=backhaul_latency_s,
                )
        else:
            self.metrics.record_lost_transmission(sent)
            if self.events is not None and sent > 0:
                self.events.record(
                    now, "loss", sat.satellite_id, station.station_id,
                    bits=sent,
                )
        if station.can_transmit:
            self._tx_contact(sat, now, station.station_id)

    # -- diversity reception (Sec. 3.3's hybrid-GS combining) ---------------

    def _copy_decode_probability(self, sat: Satellite, station_index: int,
                                 elevation_deg: float, range_km: float,
                                 required_esn0_db: float,
                                 now: datetime) -> float:
        """One listening station's chance of decoding the shared stream.

        The station's *true*-weather Es/N0 (its own geometry, its own
        storm) is measured against the MODCOD threshold the transmitter
        committed to, through the soft Gaussian-margin model.  Injected
        faults apply the single-penalty rule: a hard outage (or dark
        station, or decode fault) zeroes the copy, a partial outage
        scales the copy's probability -- never the group's bits budget,
        which belongs to the transmitter, not any one receiver.
        """
        station = self.network[station_index]
        if self.outages is not None and self.outages.is_down(
            station.station_id, now
        ):
            return 0.0
        availability = 1.0
        if self.faults is not None:
            availability = self.faults.station_availability(
                station.station_id, now
            )
            if availability <= 0.0:
                return 0.0
            if self.faults.is_undecoded(station.station_id, now):
                return 0.0
        truth = self.truth_weather.sample(
            station.latitude_deg, station.longitude_deg, now
        )
        budget = self.scheduler._link_budget_for(sat, station_index)
        result = budget.evaluate(
            range_km=range_km,
            elevation_deg=elevation_deg,
            station_latitude_deg=station.latitude_deg,
            rain_rate_mm_h=truth.rain_rate_mm_h,
            cloud_water_kg_m2=truth.cloud_water_kg_m2,
            station_altitude_km=station.altitude_km,
        )
        probability = decode_probability(result.esn0_db, required_esn0_db)
        return probability * availability

    def _execute_diversity(self, assignment, secondaries,
                           now: datetime) -> None:
        """Execute one pass step with extra listening stations.

        The satellite transmits exactly once, at the primary assignment's
        committed bitrate/MODCOD; every receiver (primary + recruited
        secondaries) independently attempts to decode that one stream and
        the :class:`DiversityCombiner` ORs the copies.  Each successful
        station posts its own receipt through the normal backhaul path --
        the backend collator's duplicate handling collapses the extras,
        and delivered bits/latency are credited once via the
        delivered-chunk dedup set, to the first successful station.
        """
        cfg = self.config
        rec = self.obs
        sat = self.satellites[assignment.satellite_index]
        primary = self.network[assignment.station_index]
        if sat.power is not None and not sat.power.can_transmit():
            self.power_blocked_steps += 1
            return
        self._transmitted_this_step.add(assignment.satellite_index)
        usable_fraction = 1.0
        if cfg.acquisition_overhead_s > 0.0:
            previously = self._previous_links.get(assignment.satellite_index)
            if previously != assignment.station_index:
                usable_fraction = 1.0 - (
                    cfg.acquisition_overhead_s / cfg.step_s
                )
        attempts = [(
            assignment.station_index,
            primary.station_id,
            True,
            self._copy_decode_probability(
                sat, assignment.station_index, assignment.elevation_deg,
                assignment.range_km, assignment.required_esn0_db, now,
            ),
        )]
        for edge in secondaries:
            attempts.append((
                edge.station_index,
                self.network[edge.station_index].station_id,
                False,
                self._copy_decode_probability(
                    sat, edge.station_index, edge.elevation_deg,
                    edge.range_km, assignment.required_esn0_db, now,
                ),
            ))
        reception = self.diversity.combine(sat.satellite_id, now, attempts)
        decoded = reception.decoded
        if decoded and self.faults is not None and self.faults.is_tle_stale(
            sat.satellite_id, now
        ):
            # Pointing is the transmitter's problem: stale elements fail
            # every copy at once, however many stations are listening.
            decoded = False
            self.fault_counters.stale_tle_steps += 1
            if rec.enabled:
                rec.event("fault", when=now.isoformat(), fault="stale_tle",
                          satellite_id=sat.satellite_id,
                          station_id=primary.station_id)
        bits_budget = assignment.bitrate_bps * cfg.step_s * usable_fraction
        sent, completed = sat.storage.transmit(bits_budget, now,
                                               decoded=decoded)
        if rec.enabled:
            rec.event("assignment", when=now.isoformat(),
                      satellite_id=sat.satellite_id,
                      station_id=primary.station_id,
                      bitrate_bps=assignment.bitrate_bps,
                      decoded=decoded, bits=sent,
                      receivers=len(attempts))
        if self.events is not None and sent > 0:
            self.events.record(
                now, "transmission", sat.satellite_id, primary.station_id,
                bits=sent, bitrate_bps=assignment.bitrate_bps,
                decoded=decoded,
            )
        if decoded:
            successes = [c for c in reception.copies if c.decoded]
            credit = self.network[successes[0].station_index]
            for chunk in completed:
                if chunk.chunk_id not in self._delivered_chunk_ids:
                    self._delivered_chunk_ids.add(chunk.chunk_id)
                    latency = (now - chunk.capture_time).total_seconds()
                    self.metrics.record_delivery(
                        sat.satellite_id, latency, chunk.size_bits,
                        credit.station_id,
                    )
                    if self.demand is not None:
                        self.demand.accountant.record_delivery(chunk, now)
                    if self.events is not None:
                        self.events.record(
                            now, "delivery", sat.satellite_id,
                            credit.station_id, chunk_id=chunk.chunk_id,
                            latency_s=latency, bits=chunk.size_bits,
                        )
                else:
                    self.fault_counters.redelivered_chunks += 1
                # One receipt per successful copy, each over its own
                # backhaul (partitions/latency apply per station); the
                # collator's duplicate-receipt path eats the extras.
                for copy in successes:
                    station = self.network[copy.station_index]
                    backhaul_fault = None
                    if self.faults is not None:
                        backhaul_fault = self.faults.backhaul_fault(
                            station.station_id, now
                        )
                    if backhaul_fault is not None \
                            and backhaul_fault.partitioned:
                        self.fault_counters.receipts_dropped += 1
                        continue
                    backhaul_latency_s = station.backhaul_latency_s
                    if backhaul_fault is not None:
                        backhaul_latency_s += backhaul_fault.extra_latency_s
                        self.fault_counters.receipts_delayed += 1
                    self.backend.submit_receipt(
                        ChunkReceiptMessage(
                            station_id=station.station_id,
                            satellite_id=sat.satellite_id,
                            chunk_id=chunk.chunk_id,
                            received_at=now,
                            size_bits=chunk.size_bits,
                        ),
                        backhaul_latency_s=backhaul_latency_s,
                    )
        else:
            self.metrics.record_lost_transmission(sent)
            if self.events is not None and sent > 0:
                self.events.record(
                    now, "loss", sat.satellite_id, primary.station_id,
                    bits=sent,
                )
        if primary.can_transmit:
            self._tx_contact(sat, now, primary.station_id)

    def _decodes_under_truth(self, assignment, sat: Satellite,
                             station, now: datetime) -> bool:
        """Would the planned MODCOD decode under the actual atmosphere?"""
        truth = self.truth_weather.sample(
            station.latitude_deg, station.longitude_deg, now
        )
        budget = self.scheduler._link_budget_for(sat, assignment.station_index)
        result = budget.evaluate(
            range_km=assignment.range_km,
            elevation_deg=assignment.elevation_deg,
            station_latitude_deg=station.latitude_deg,
            rain_rate_mm_h=truth.rain_rate_mm_h,
            cloud_water_kg_m2=truth.cloud_water_kg_m2,
            station_altitude_km=station.altitude_km,
        )
        return result.esn0_db >= assignment.required_esn0_db

    # -- planned execution (Sec. 3's operational model) ---------------------

    def _planned_step(self, now: datetime) -> dict[int, int]:
        """One step where actors follow plans instead of live matching.

        Stations obey the backend's newest plan; each satellite obeys the
        plan it last received at a tx-capable contact.  Returns the
        executed satellite->station links.
        """
        from datetime import timedelta as _td

        cfg = self.config
        if self._latest_plan is None or now >= self._next_plan_issue:
            self._latest_plan = self.scheduler.build_plan(
                now, cfg.plan_horizon_s
            )
            self._next_plan_issue = now + _td(seconds=cfg.plan_refresh_s)
        station_targets = self._latest_plan.station_targets(now)
        executed: dict[int, int] = {}
        for sat_index, sat in enumerate(self.satellites):
            plan = self._satellite_plans.get(sat_index)
            if plan is None:
                continue
            entry = plan.entry_at(sat_index, now)
            if entry is None:
                continue
            station = self.network[entry.station_index]
            pointing_at = station_targets.get(entry.station_index)
            aligned = pointing_at == sat_index
            if not aligned:
                # The station moved on (newer plan); the satellite's
                # transmission falls on a dish pointed elsewhere.
                self.plan_mismatch_steps += 1
            assignment = Assignment(
                satellite_index=sat_index,
                station_index=entry.station_index,
                weight=0.0,
                bitrate_bps=entry.expected_bitrate_bps,
                elevation_deg=entry.elevation_deg,
                range_km=entry.range_km,
                required_esn0_db=entry.required_esn0_db,
            )
            if aligned:
                self._execute_assignment(assignment, now)
            else:
                sent, _ = sat.storage.transmit(
                    entry.expected_bitrate_bps * cfg.step_s, now,
                    decoded=False,
                )
                self.metrics.record_lost_transmission(sent)
            executed[sat_index] = entry.station_index
        self._bootstrap_planless(now, executed)
        return executed

    def _bootstrap_planless(self, now: datetime,
                            executed: dict[int, int]) -> None:
        """Give plans to satellites passing tx-capable stations.

        A satellite whose executed contact this step was tx-capable, or a
        plan-less satellite merely visible from an idle tx-capable
        station, receives the backend's newest plan (plus acks).
        """
        tx_indices = [
            j for j, st in enumerate(self.network) if st.can_transmit
        ]
        if not tx_indices:
            return
        # Contacted a tx station per plan: refresh during the same pass
        # (the ack/plan upload itself already ran in _execute_assignment).
        for sat_index, station_index in executed.items():
            if self.network[station_index].can_transmit:
                self._satellite_plans[sat_index] = self._latest_plan
        # Plan-less satellites: any visible tx station can bootstrap them
        # (uplink is narrowband and does not occupy the downlink dish).
        planless = [
            i for i, _s in enumerate(self.satellites)
            if i not in self._satellite_plans
        ]
        if not planless:
            return
        elevation, _rng, visible = self.scheduler.visibility(now)
        for sat_index in planless:
            for j in tx_indices:
                if visible[sat_index, j]:
                    self._satellite_plans[sat_index] = self._latest_plan
                    self._tx_contact(self.satellites[sat_index], now,
                                     self.network[j].station_id)
                    break

    def _record_churn(self, current_links: dict[int, int]) -> None:
        """Count satellite->station link changes relative to the last step."""
        for sat_index, station_index in current_links.items():
            if self._previous_links.get(sat_index) != station_index:
                self.link_changes += 1

    def _update_power(self, now: datetime, step_index: int) -> None:
        """Integrate every powered satellite's energy balance for one step.

        Eclipse state is re-evaluated every 5th step (LEO shadow
        transitions take minutes; the cache keeps the per-step cost to a
        handful of eclipse tests).
        """
        from repro.orbits.sun import is_eclipsed

        refresh = step_index % 5 == 0 or not self._sunlit
        for index, sat in enumerate(self.satellites):
            if sat.power is None:
                continue
            if refresh:
                pos, _vel = sat.position_teme(now)
                self._sunlit[index] = not is_eclipsed(pos, now)
            sat.power.step(
                self.config.step_s,
                sunlit=self._sunlit.get(index, True),
                transmitting=index in self._transmitted_this_step,
            )

    def _tx_contact(self, sat: Satellite, now: datetime,
                    station_id: str = "") -> None:
        """Plan upload + delayed-ack delivery during a tx-capable contact."""
        if (
            self.faults is not None
            and station_id
            and self.faults.is_partitioned(station_id, now)
        ):
            # The station is cut off from the backend: it has no fresh
            # plan to upload and no collated ack batch.  The satellite
            # leaves with stale state and recovers via the ack timeout.
            self.fault_counters.ack_batches_missed += 1
            if self.obs.enabled:
                self.obs.event("fault", when=now.isoformat(),
                               fault="ack_batch_missed",
                               satellite_id=sat.satellite_id,
                               station_id=station_id)
            return
        with self.obs.span("plan_upload"):
            sat.receive_plan(now)
            if self.events is not None:
                self.events.record(now, "plan_upload", sat.satellite_id,
                                   station_id)
            self.obs.counter("plan_uploads")
        with self.obs.span("ack_collation"):
            batch = self.backend.issue_ack_batch(sat.satellite_id, now)
            if batch is not None:
                sat.storage.acknowledge(batch.chunk_ids, now)
                self.obs.counter("ack_batches")
                self.obs.counter("acked_chunks", len(batch.chunk_ids))
                if self.events is not None:
                    self.events.record(
                        now, "ack_batch", sat.satellite_id, station_id,
                        chunk_count=len(batch.chunk_ids),
                    )
            cutoff = now - timedelta(seconds=self.config.ack_timeout_s)
            requeued = sat.storage.requeue_stale_unacked(cutoff)
            if requeued:
                self.metrics.record_requeue(len(requeued))
                self.obs.counter("requeued_chunks", len(requeued))
                if self.events is not None:
                    self.events.record(
                        now, "requeue", sat.satellite_id, station_id,
                        chunk_count=len(requeued),
                    )
