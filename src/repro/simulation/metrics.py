"""Metrics collection and the end-of-run report.

The paper's evaluation plots CDFs of two quantities -- per-satellite
*backlog* (GB not delivered at the end of the day, Fig. 3a) and per-chunk
*latency* (minutes from capture to ground reception, Fig. 3b/3c) -- plus
aggregate transfer totals ("over 250 TB").  The collector gathers exactly
those, with time-series snapshots for debugging and ablations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime

import numpy as np

GB_TO_BITS = 8e9

#: Version tag stamped into serialized reports.
REPORT_SCHEMA = "repro-report/1"


@dataclass
class BacklogSnapshot:
    """Per-satellite backlog and recorder occupancy at one instant.

    ``storage_gb`` includes delivered-but-unacked retention -- the ack-free
    design's storage cost (paper Sec. 3.3).
    """

    when: datetime
    backlog_gb: dict[str, float]
    storage_gb: dict[str, float] = field(default_factory=dict)


@dataclass
class SimulationReport:
    """Everything a finished run reports."""

    latency_s: dict[str, list[float]]  # satellite -> delivered-chunk latencies
    final_backlog_gb: dict[str, float]  # ground-truth undelivered at end
    final_unacked_gb: dict[str, float]
    delivered_bits: float
    generated_bits: float
    lost_transmission_bits: float
    retransmitted_chunks: int
    matched_step_counts: list[int]
    snapshots: list[BacklogSnapshot]
    station_bits: dict[str, float]  # station -> bits received
    satellite_bits: dict[str, float]  # satellite -> bits delivered
    #: Per-fault event counts from the fault-injection layer; empty when
    #: the run had no FaultSchedule (the default).
    fault_counters: dict[str, int] = field(default_factory=dict)
    #: Accumulated wall seconds per engine stage, keyed by span path
    #: (``run/schedule/matching``); empty unless the run was observed
    #: (``observability=ObsConfig(...)``).
    stage_timings: dict[str, float] = field(default_factory=dict)
    #: Satellite->station link changes over the run (antenna slews); the
    #: churn cost of the matching policy.
    link_changes: int = 0
    #: Planned-execution steps where a satellite transmitted at a station
    #: no longer pointing at it (always 0 in live mode).
    plan_mismatch_steps: int = 0
    #: Per-tenant demand accounting (delivered bits, deadline-hit rate,
    #: SLA violations, ...), keyed by tenant id; empty when the run had
    #: no demand layer (the legacy single-tenant path).
    tenant_reports: dict[str, dict] = field(default_factory=dict)
    #: Jain's index over demand-share-normalized per-tenant delivered
    #: bits; None without a demand layer.
    tenant_fairness: float | None = None
    #: Diversity-reception counters (passes, copies attempted/decoded,
    #: combined outcomes, rescues, per-station stats from
    #: :meth:`repro.network.diversity.DiversityCombiner.as_dict`); empty
    #: unless the run executed in diversity mode.
    diversity: dict = field(default_factory=dict)

    # -- latency --------------------------------------------------------------

    def all_latencies_s(self) -> np.ndarray:
        values = [v for per_sat in self.latency_s.values() for v in per_sat]
        return np.array(sorted(values)) if values else np.array([])

    def latency_percentiles_min(self, percentiles=(50, 90, 99)) -> dict[int, float]:
        lat = self.all_latencies_s()
        if lat.size == 0:
            return {p: float("nan") for p in percentiles}
        return {p: float(np.percentile(lat, p)) / 60.0 for p in percentiles}

    def mean_latency_min(self) -> float:
        lat = self.all_latencies_s()
        return float(lat.mean()) / 60.0 if lat.size else float("nan")

    # -- backlog --------------------------------------------------------------

    def backlog_values_gb(self) -> np.ndarray:
        return np.array(sorted(self.final_backlog_gb.values()))

    def backlog_percentiles_gb(self, percentiles=(50, 90, 99)) -> dict[int, float]:
        values = self.backlog_values_gb()
        if values.size == 0:
            return {p: float("nan") for p in percentiles}
        return {p: float(np.percentile(values, p)) for p in percentiles}

    # -- totals ---------------------------------------------------------------

    @property
    def delivered_tb(self) -> float:
        return self.delivered_bits / 8e12

    @property
    def delivery_fraction(self) -> float:
        if self.generated_bits == 0:
            return 1.0
        return self.delivered_bits / self.generated_bits

    # -- per-tenant demand ------------------------------------------------------

    def tenant_delivered_gb(self) -> dict[str, float]:
        """Delivered volume per tenant in GB (empty without tenants)."""
        return {
            tenant_id: block["delivered_bits"] / GB_TO_BITS
            for tenant_id, block in self.tenant_reports.items()
        }

    def total_sla_violations(self) -> int:
        """Late deliveries plus undelivered-but-overdue chunks, all tenants."""
        return sum(
            int(block["sla_violations"])
            for block in self.tenant_reports.values()
        )

    # -- stage timings ---------------------------------------------------------

    def run_stage_seconds(self) -> dict[str, float]:
        """Direct children of the ``run`` span: the per-step stage totals."""
        return {
            path.split("/", 1)[1]: seconds
            for path, seconds in self.stage_timings.items()
            if path.startswith("run/") and "/" not in path.split("/", 1)[1]
        }

    def stage_coverage(self) -> float:
        """Fraction of measured ``run`` wall time the stages account for.

        NaN when the run was not observed.
        """
        total = self.stage_timings.get("run")
        if not total:
            return float("nan")
        return sum(self.run_stage_seconds().values()) / total

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible dict; stable round-trip via :meth:`from_dict`.

        The tenant block is emitted only when the run had a demand
        layer: legacy single-tenant reports keep the exact key set (and
        therefore byte-identical JSON) they had before tenants existed.
        """
        payload = {
            "schema": REPORT_SCHEMA,
            "latency_s": {k: list(v) for k, v in self.latency_s.items()},
            "final_backlog_gb": dict(self.final_backlog_gb),
            "final_unacked_gb": dict(self.final_unacked_gb),
            "delivered_bits": self.delivered_bits,
            "generated_bits": self.generated_bits,
            "lost_transmission_bits": self.lost_transmission_bits,
            "retransmitted_chunks": self.retransmitted_chunks,
            "matched_step_counts": list(self.matched_step_counts),
            "snapshots": [
                {
                    "when": snap.when.isoformat(),
                    "backlog_gb": dict(snap.backlog_gb),
                    "storage_gb": dict(snap.storage_gb),
                }
                for snap in self.snapshots
            ],
            "station_bits": dict(self.station_bits),
            "satellite_bits": dict(self.satellite_bits),
            "fault_counters": dict(self.fault_counters),
            "stage_timings": dict(self.stage_timings),
            "link_changes": self.link_changes,
            "plan_mismatch_steps": self.plan_mismatch_steps,
        }
        if self.tenant_reports:
            payload["tenant_reports"] = {
                tenant_id: dict(block)
                for tenant_id, block in self.tenant_reports.items()
            }
            payload["tenant_fairness"] = self.tenant_fairness
        if self.diversity:
            # Same contract as the tenant block: emitted only when the
            # run used diversity reception, so every other mode's JSON is
            # byte-identical to builds without the diversity layer.
            block = dict(self.diversity)
            if "stations" in block:
                block["stations"] = {
                    station_id: dict(stats)
                    for station_id, stats in block["stations"].items()
                }
            payload["diversity"] = block
        return payload

    @classmethod
    def from_dict(cls, raw: dict) -> "SimulationReport":
        schema = raw.get("schema", REPORT_SCHEMA)
        if schema != REPORT_SCHEMA:
            raise ValueError(
                f"unsupported report schema {schema!r} "
                f"(expected {REPORT_SCHEMA!r})"
            )
        return cls(
            latency_s={k: list(v) for k, v in raw["latency_s"].items()},
            final_backlog_gb=dict(raw["final_backlog_gb"]),
            final_unacked_gb=dict(raw["final_unacked_gb"]),
            delivered_bits=raw["delivered_bits"],
            generated_bits=raw["generated_bits"],
            lost_transmission_bits=raw["lost_transmission_bits"],
            retransmitted_chunks=raw["retransmitted_chunks"],
            matched_step_counts=list(raw["matched_step_counts"]),
            snapshots=[
                BacklogSnapshot(
                    when=datetime.fromisoformat(snap["when"]),
                    backlog_gb=dict(snap["backlog_gb"]),
                    storage_gb=dict(snap.get("storage_gb", {})),
                )
                for snap in raw["snapshots"]
            ],
            station_bits=dict(raw["station_bits"]),
            satellite_bits=dict(raw["satellite_bits"]),
            fault_counters=dict(raw.get("fault_counters", {})),
            stage_timings=dict(raw.get("stage_timings", {})),
            link_changes=int(raw.get("link_changes", 0)),
            plan_mismatch_steps=int(raw.get("plan_mismatch_steps", 0)),
            tenant_reports={
                tenant_id: dict(block)
                for tenant_id, block in raw.get("tenant_reports", {}).items()
            },
            tenant_fairness=raw.get("tenant_fairness"),
            diversity=dict(raw.get("diversity", {})),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SimulationReport":
        return cls.from_dict(json.loads(text))


class MetricsCollector:
    """Accumulates metrics during a run; finalized into a report."""

    def __init__(self) -> None:
        self.latency_s: dict[str, list[float]] = {}
        self.delivered_bits = 0.0
        self.generated_bits = 0.0
        self.lost_transmission_bits = 0.0
        self.retransmitted_chunks = 0
        self.matched_step_counts: list[int] = []
        self.snapshots: list[BacklogSnapshot] = []
        self.station_bits: dict[str, float] = {}
        self.satellite_bits: dict[str, float] = {}

    def record_generation(self, bits: float) -> None:
        self.generated_bits += bits

    def record_delivery(self, satellite_id: str, latency_s: float,
                        bits: float, station_id: str) -> None:
        if latency_s < 0:
            raise ValueError(f"negative latency: {latency_s}")
        self.latency_s.setdefault(satellite_id, []).append(latency_s)
        self.delivered_bits += bits
        self.station_bits[station_id] = self.station_bits.get(station_id, 0.0) + bits
        self.satellite_bits[satellite_id] = (
            self.satellite_bits.get(satellite_id, 0.0) + bits
        )

    def record_lost_transmission(self, bits: float) -> None:
        self.lost_transmission_bits += bits

    def record_requeue(self, count: int) -> None:
        self.retransmitted_chunks += count

    def record_step(self, matched: int) -> None:
        self.matched_step_counts.append(matched)

    def record_snapshot(self, when: datetime,
                        backlog_gb: dict[str, float],
                        storage_gb: dict[str, float] | None = None) -> None:
        self.snapshots.append(
            BacklogSnapshot(when, dict(backlog_gb), dict(storage_gb or {}))
        )

    def finalize(self, final_backlog_gb: dict[str, float],
                 final_unacked_gb: dict[str, float],
                 fault_counters: dict[str, int] | None = None,
                 stage_timings: dict[str, float] | None = None,
                 link_changes: int = 0,
                 plan_mismatch_steps: int = 0,
                 tenant_reports: dict[str, dict] | None = None,
                 tenant_fairness: float | None = None,
                 diversity: dict | None = None,
                 ) -> SimulationReport:
        return SimulationReport(
            latency_s={k: list(v) for k, v in self.latency_s.items()},
            final_backlog_gb=dict(final_backlog_gb),
            final_unacked_gb=dict(final_unacked_gb),
            delivered_bits=self.delivered_bits,
            generated_bits=self.generated_bits,
            lost_transmission_bits=self.lost_transmission_bits,
            retransmitted_chunks=self.retransmitted_chunks,
            matched_step_counts=list(self.matched_step_counts),
            snapshots=list(self.snapshots),
            station_bits=dict(self.station_bits),
            satellite_bits=dict(self.satellite_bits),
            fault_counters=dict(fault_counters or {}),
            stage_timings=dict(stage_timings or {}),
            link_changes=link_changes,
            plan_mismatch_steps=plan_mismatch_steps,
            tenant_reports=dict(tenant_reports or {}),
            tenant_fairness=tenant_fairness,
            diversity=dict(diversity or {}),
        )
