"""Memoized headline scenario runs shared across figures.

Figs. 3a and 3b are two views (backlog, latency) of the same three
simulations -- Baseline, DGS, DGS(25%), all latency-optimized -- and
Fig. 3c adds the throughput-optimized DGS(25%).  Each distinct
(variant, duration, scale) runs exactly once per process.

Two layers of sharing keep multi-figure sessions cheap: the result cache
here, and -- one level down -- the fleet ephemeris table
(:func:`repro.orbits.ephemeris.shared_ephemeris_table`), which is keyed
by (TLE set, start, step) rather than by variant, so dgs-L, dgs25-L and
dgs25-T reuse one batched SGP4 propagation even though they are distinct
simulations over different station subsets.
"""

from __future__ import annotations

from repro.core.scenarios import ScenarioResult, ScenarioSpec
from repro.experiments.common import scaled_counts

_CACHE: dict[tuple, ScenarioResult] = {}


def spec_for_variant(variant: str, duration_s: float = 86400.0,
                     scale: float = 1.0) -> ScenarioSpec:
    """The :class:`ScenarioSpec` behind one named variant."""
    num_sats, num_stations, baseline_stations = scaled_counts(scale)
    value = "latency" if variant.endswith("L") else "throughput"
    if variant.startswith("baseline"):
        return ScenarioSpec.baseline(
            value=value,
            num_satellites=num_sats,
            duration_s=duration_s,
            station_count=baseline_stations,
        )
    fraction = 0.25 if variant.startswith("dgs25") else 1.0
    return ScenarioSpec.dgs(
        station_fraction=fraction,
        value=value,
        num_satellites=num_sats,
        num_stations=num_stations,
        duration_s=duration_s,
    )


def _cache_key(variant: str, duration_s: float, scale: float) -> tuple:
    return (variant, round(duration_s), round(scale, 4))


def ensure_runs(variants, duration_s: float = 86400.0, scale: float = 1.0,
                workers: int = 0, run_dir: str | None = None) -> None:
    """Run every uncached variant through the sweep runner, then cache.

    ``workers=0`` executes in this process (bit-identical to the historic
    per-variant loop); ``workers>=1`` shards the missing variants across
    a process pool.  Either way each result round-trips through the
    cell-payload serialization, so figure modules see the same numbers
    regardless of execution mode.
    """
    from repro.runners import SweepCell, report_from_payload, run_specs

    missing = []
    seen = set()
    for variant in variants:
        key = _cache_key(variant, duration_s, scale)
        if key in _CACHE or variant in seen:
            continue
        seen.add(variant)
        missing.append(variant)
    if not missing:
        return
    cells = [
        SweepCell(variant, spec_for_variant(variant, duration_s, scale))
        for variant in missing
    ]
    payloads = run_specs(cells, workers=workers, run_dir=run_dir)
    for variant in missing:
        payload = payloads[variant]
        _CACHE[_cache_key(variant, duration_s, scale)] = ScenarioResult(
            label=variant,
            num_satellites=payload["num_satellites"],
            num_stations=payload["num_stations"],
            report=report_from_payload(payload),
        )


def get_run(variant: str, duration_s: float = 86400.0,
            scale: float = 1.0) -> ScenarioResult:
    """Run (or fetch) one named scenario.

    Variants: ``baseline-L``, ``dgs-L``, ``dgs25-L``, ``dgs25-T``,
    ``dgs-T`` -- suffix L/T is the latency/throughput value function.
    """
    ensure_runs([variant], duration_s, scale)
    return _CACHE[_cache_key(variant, duration_s, scale)]


def clear_cache() -> None:
    """Drop memoized runs (tests use this to force fresh simulations)."""
    _CACHE.clear()
