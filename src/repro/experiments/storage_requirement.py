"""Onboard storage requirement: does ack-free downlink cost recorder space?

Sec. 3.3: "DGS does not necessarily reduce a satellite's storage
requirement.  Today, satellites have to store data for an entire orbit
anyway, so DGS does not increase this requirement either."  This
experiment measures the claim: track each satellite's recorder occupancy
(undelivered data *plus* delivered-but-unacked retention) over a day under
the baseline (immediate acks at every contact -- all stations are
transmit-capable) and under DGS (delayed acks through the tx-capable
subset), and compare the peaks.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import ComparisonTable
from repro.experiments.common import ExperimentResult, scaled_counts
from repro.experiments.paper_runs import get_run


def _peak_storage_per_satellite(report) -> list[float]:
    """Max recorder occupancy each satellite hit during the run (GB)."""
    peaks: dict[str, float] = {}
    for snapshot in report.snapshots:
        source = snapshot.storage_gb or snapshot.backlog_gb
        for sat_id, gb in source.items():
            peaks[sat_id] = max(peaks.get(sat_id, 0.0), gb)
    return sorted(peaks.values())


def run(duration_s: float = 86400.0, scale: float = 1.0) -> ExperimentResult:
    """Compare peak recorder occupancy: baseline vs DGS (Sec. 3.3 claim)."""
    result = ExperimentResult(
        experiment_id="storage",
        description="onboard recorder requirement under ack-free downlink",
    )
    base = get_run("baseline-L", duration_s, scale)
    dgs = get_run("dgs-L", duration_s, scale)
    base_peaks = _peak_storage_per_satellite(base.report)
    dgs_peaks = _peak_storage_per_satellite(dgs.report)
    result.series["baseline_peak_gb"] = base_peaks
    result.series["dgs_peak_gb"] = dgs_peaks
    table = ComparisonTable(
        title="Peak recorder occupancy per satellite", unit="GB"
    )
    if base_peaks and dgs_peaks:
        # The paper's claim is qualitative ("does not increase"); the
        # 'paper' column is therefore the baseline's own measurement and a
        # faithful reproduction shows a ratio near (or below) ~1-2x, not
        # the order-of-magnitude blowup naive ack-free accounting suggests.
        for pct in (50, 90, 99):
            table.add(
                f"p{pct} (baseline -> DGS)",
                float(np.percentile(base_peaks, pct)),
                float(np.percentile(dgs_peaks, pct)),
            )
    result.tables.append(table)
    num_sats, _stations, _b = scaled_counts(scale)
    daily_gb = 100.0
    if dgs_peaks:
        worst = max(dgs_peaks)
        result.notes.append(
            f"worst DGS recorder peak {worst:.1f} GB = "
            f"{worst / daily_gb:.0%} of a day's capture across "
            f"{num_sats} satellites -- consistent with 'store data for an "
            "orbit anyway' (an orbit is ~6.6% of a day)"
        )
    return result
