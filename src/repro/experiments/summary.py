"""The paper's Sec. 1 headline summary numbers.

* Latency: mean 58 -> 12 minutes, p90 293 -> 44 minutes (baseline -> DGS).
* Data transfer: "we download over 250 TB" (the experiment period; one
  simulated day at 259 x 100 GB generates ~25.9 TB, so the paper's number
  corresponds to ~10+ days -- we report the daily figure and the
  extrapolation).
* Backlog: median 8.5 -> 1.9 GB, p99 80.7 -> 16.7 GB.
"""

from __future__ import annotations

from repro.analysis.tables import ComparisonTable
from repro.experiments.common import ExperimentResult
from repro.experiments.paper_runs import get_run


def run(duration_s: float = 86400.0, scale: float = 1.0) -> ExperimentResult:
    """Reproduce the Sec. 1 summary bullet points."""
    result = ExperimentResult(
        experiment_id="summary",
        description="Sec. 1 headline numbers (baseline vs DGS)",
    )
    base = get_run("baseline-L", duration_s, scale).report
    dgs = get_run("dgs-L", duration_s, scale).report

    latency = ComparisonTable(title="Latency summary", unit="min")
    latency.add("baseline mean", 58.0, base.mean_latency_min())
    latency.add("DGS mean", 12.0, dgs.mean_latency_min())
    latency.add("baseline p90", 293.0, base.latency_percentiles_min((90,))[90])
    latency.add("DGS p90", 44.0, dgs.latency_percentiles_min((90,))[90])
    result.tables.append(latency)

    backlog = ComparisonTable(title="Backlog summary", unit="GB")
    backlog.add("baseline median", 8.5, base.backlog_percentiles_gb((50,))[50])
    backlog.add("DGS median", 1.9, dgs.backlog_percentiles_gb((50,))[50])
    backlog.add("baseline p99", 80.7, base.backlog_percentiles_gb((99,))[99])
    backlog.add("DGS p99", 16.7, dgs.backlog_percentiles_gb((99,))[99])
    result.tables.append(backlog)

    days_to_250tb = (
        250.0 / dgs.delivered_tb * (duration_s / 86400.0)
        if dgs.delivered_tb > 0
        else float("inf")
    )
    result.notes.append(
        f"DGS delivered {dgs.delivered_tb:.1f} TB in {duration_s / 86400.0:.1f} "
        f"simulated day(s); the paper's '>250 TB' accumulates in "
        f"~{days_to_250tb:.0f} days at this rate"
    )
    result.series["baseline_latency_min"] = [
        v / 60.0 for v in base.all_latencies_s()
    ]
    result.series["dgs_latency_min"] = [v / 60.0 for v in dgs.all_latencies_s()]
    return result
