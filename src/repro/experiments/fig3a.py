"""Figure 3a: CDF of end-of-day data backlog per satellite.

Paper numbers (GB, median / p90 / p99):

* Baseline:  8.5 / 28.9 / 80.7
* DGS:       1.9 /  5.3 / 16.7   (~5x better across the distribution)
* DGS(25%):  3.9 / 20.1 / 66.7   (geographic diversity alone helps)
"""

from __future__ import annotations

from repro.analysis.tables import ComparisonTable
from repro.experiments.common import ExperimentResult
from repro.experiments.paper_runs import get_run

PAPER_BACKLOG_GB = {
    "baseline": {50: 8.5, 90: 28.9, 99: 80.7},
    "dgs": {50: 1.9, 90: 5.3, 99: 16.7},
    "dgs25": {50: 3.9, 90: 20.1, 99: 66.7},
}

_VARIANTS = {"baseline": "baseline-L", "dgs": "dgs-L", "dgs25": "dgs25-L"}


def run(duration_s: float = 86400.0, scale: float = 1.0,
        workers: int = 0) -> ExperimentResult:
    """Reproduce Fig. 3a: backlog CDFs for Baseline, DGS, and DGS(25%).

    The three variants are submitted to the sweep runner as one grid
    (``workers`` processes; 0 = in this process) instead of looped over.
    """
    from repro.experiments.paper_runs import ensure_runs

    ensure_runs(_VARIANTS.values(), duration_s, scale, workers=workers)
    result = ExperimentResult(
        experiment_id="fig3a",
        description="end-of-day data backlog CDF per satellite (GB)",
    )
    for label, variant in _VARIANTS.items():
        scenario = get_run(variant, duration_s, scale)
        backlog = sorted(scenario.report.final_backlog_gb.values())
        result.series[label] = backlog
        table = ComparisonTable(
            title=f"Fig 3a backlog, {label} "
                  f"({scenario.num_satellites} sats, {scenario.num_stations} stations)",
            unit="GB",
        )
        measured = scenario.report.backlog_percentiles_gb((50, 90, 99))
        for pct, paper_value in PAPER_BACKLOG_GB[label].items():
            table.add(f"p{pct}", paper_value, measured[pct])
        result.tables.append(table)
    # The paper's headline shape claims.
    dgs = get_run("dgs-L", duration_s, scale).report
    base = get_run("baseline-L", duration_s, scale).report
    base_med = base.backlog_percentiles_gb((50,))[50]
    dgs_med = dgs.backlog_percentiles_gb((50,))[50]
    if dgs_med > 0:
        result.notes.append(
            f"median backlog improvement DGS vs baseline: {base_med / dgs_med:.1f}x "
            "(paper: ~5x)"
        )
    return result
