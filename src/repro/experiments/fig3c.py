"""Figure 3c: effect of the value function on the latency CDF.

All three systems are DGS(25%)-sized or the baseline, and everything is
measured in latency even though one variant *optimizes* throughput:

* Baseline (L):   58 / 293  (median / p90 minutes)
* DGS(25%, L):    20 /  58
* DGS(25%, T):    22 / 119  -- optimizing throughput roughly doubles p90
  latency, showing the value function is a real control knob; yet even
  the throughput-optimized 25% deployment beats the full baseline.
"""

from __future__ import annotations

from repro.analysis.tables import ComparisonTable
from repro.experiments.common import ExperimentResult
from repro.experiments.paper_runs import get_run

PAPER_LATENCY_MIN = {
    "baseline-L": {50: 58.0, 90: 293.0},
    "dgs25-L": {50: 20.0, 90: 58.0},
    "dgs25-T": {50: 22.0, 90: 119.0},
}


def run(duration_s: float = 86400.0, scale: float = 1.0,
        workers: int = 0) -> ExperimentResult:
    """Reproduce Fig. 3c: latency under latency- vs throughput-optimized Phi.

    Variants are submitted to the sweep runner as one grid (``workers``
    processes; 0 = in this process) instead of looped over.
    """
    from repro.experiments.paper_runs import ensure_runs

    ensure_runs(PAPER_LATENCY_MIN.keys(), duration_s, scale, workers=workers)
    result = ExperimentResult(
        experiment_id="fig3c",
        description="latency CDF under different value functions (minutes)",
    )
    for variant, paper in PAPER_LATENCY_MIN.items():
        scenario = get_run(variant, duration_s, scale)
        latencies_min = [v / 60.0 for v in scenario.report.all_latencies_s()]
        result.series[variant] = latencies_min
        table = ComparisonTable(
            title=f"Fig 3c latency, {variant} "
                  f"({scenario.num_satellites} sats, {scenario.num_stations} stations)",
            unit="min",
        )
        measured = scenario.report.latency_percentiles_min((50, 90))
        for pct, paper_value in paper.items():
            table.add(f"p{pct}", paper_value, measured[pct])
        result.tables.append(table)
    lat_l = get_run("dgs25-L", duration_s, scale).report.latency_percentiles_min((90,))
    lat_t = get_run("dgs25-T", duration_s, scale).report.latency_percentiles_min((90,))
    if lat_l[90] > 0:
        result.notes.append(
            f"throughput-Phi p90 latency penalty: {lat_t[90] / lat_l[90]:.1f}x "
            "(paper: ~2x)"
        )
    base = get_run("baseline-L", duration_s, scale).report.latency_percentiles_min((50,))
    t25 = get_run("dgs25-T", duration_s, scale).report.latency_percentiles_min((50,))
    result.notes.append(
        "throughput-optimized DGS(25%) median latency "
        f"{t25[50]:.0f} min vs full baseline {base[50]:.0f} min "
        "(paper: 25% throughput-optimized still beats the baseline)"
    )
    return result
