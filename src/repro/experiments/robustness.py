"""Robustness under station failures (the paper's Sec. 1 claim, quantified).

"the centralized link is a single point of failure" -- DGS's pitch is
that losing any one cheap station barely matters, while losing one of the
baseline's five stations removes 20% of the system.  This experiment
injects outages and measures the degradation of each architecture:

* **single worst station down** all day: the baseline loses its
  highest-traffic site; DGS loses its highest-traffic node;
* **random station failures** (same per-station MTBF/repair for both);
* both announced (scheduler routes around) and unannounced (passes are
  wasted until the failure ends) variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.scenarios import PAPER_EPOCH, ScenarioSpec
from repro.experiments.common import ExperimentResult, scaled_counts
from repro.simulation.faults import OutageSchedule


@dataclass
class RobustnessRow:
    system: str
    fault: str
    delivered_tb: float
    median_latency_min: float
    degradation_pct: float  # delivered vs the same system's no-fault run

    def cells(self) -> list[str]:
        return [
            self.system,
            self.fault,
            f"{self.delivered_tb:.2f}",
            f"{self.median_latency_min:.1f}",
            f"{self.degradation_pct:+.1f}%",
        ]


_HEADERS = ["system", "fault", "delivered (TB)", "lat p50 (min)",
            "delivery vs healthy"]


def _build(system: str, num_sats: int, num_stations: int, duration_s: float):
    if system == "baseline":
        spec = ScenarioSpec.baseline(
            num_satellites=num_sats, duration_s=duration_s
        )
    else:
        spec = ScenarioSpec.dgs(
            num_satellites=num_sats, num_stations=num_stations,
            duration_s=duration_s,
        )
    scenario = spec.build()
    return scenario.network, scenario.simulation


def _run_with_outages(system: str, num_sats: int, num_stations: int,
                      duration_s: float, outages: OutageSchedule | None,
                      announced: bool):
    network, sim = _build(system, num_sats, num_stations, duration_s)
    if outages is not None:
        from repro.simulation.engine import Simulation

        sim = Simulation(
            satellites=sim.satellites,
            network=network,
            value_function=sim.scheduler.value_function,
            config=sim.config,
            truth_weather=sim.truth_weather,
            outages=outages,
            outages_announced=announced,
        )
    return network, sim.run()


def _busiest_station(system: str, num_sats: int, num_stations: int,
                     duration_s: float) -> str:
    """The station that carried the most bytes in the healthy run."""
    _network, report = _run_with_outages(
        system, num_sats, num_stations, duration_s, None, False
    )
    if not report.station_bits:
        raise RuntimeError(f"{system}: no station received any data")
    return max(report.station_bits, key=report.station_bits.get)


def run(duration_s: float = 43200.0, scale: float = 0.3) -> ExperimentResult:
    """Degradation of baseline vs DGS under injected station failures."""
    num_sats, num_stations, _base_n = scaled_counts(scale)
    result = ExperimentResult(
        experiment_id="robustness",
        description="degradation under ground-station failures",
    )
    rows: list[RobustnessRow] = []
    for system in ("baseline", "dgs"):
        _network, healthy = _run_with_outages(
            system, num_sats, num_stations, duration_s, None, False
        )
        healthy_tb = healthy.delivered_tb
        rows.append(RobustnessRow(
            system, "none", healthy_tb,
            healthy.latency_percentiles_min((50,))[50], 0.0,
        ))
        result.series[f"{system}:healthy"] = [healthy_tb]

        worst = _busiest_station(system, num_sats, num_stations, duration_s)
        for announced, label in ((True, "announced"), (False, "unannounced")):
            outages = OutageSchedule.total_failure(
                [worst], PAPER_EPOCH, duration_s
            )
            _n, report = _run_with_outages(
                system, num_sats, num_stations, duration_s, outages, announced
            )
            degradation = (
                100.0 * (report.delivered_tb - healthy_tb) / healthy_tb
                if healthy_tb else 0.0
            )
            rows.append(RobustnessRow(
                system, f"worst station down ({label})",
                report.delivered_tb,
                report.latency_percentiles_min((50,))[50],
                degradation,
            ))
            result.series[f"{system}:worst-{label}"] = [report.delivered_tb]

    result.notes.append(format_table(_HEADERS, [r.cells() for r in rows],
                                     title="-- station-failure robustness --"))
    # The qualitative claim to carry into EXPERIMENTS.md: losing the
    # busiest DGS node costs proportionally less than losing the busiest
    # baseline station.
    by_key = {f"{r.system}:{r.fault}": r for r in rows}
    base_hit = by_key["baseline:worst station down (announced)"].degradation_pct
    dgs_hit = by_key["dgs:worst station down (announced)"].degradation_pct
    result.notes.append(
        f"announced worst-station loss: baseline {base_hit:+.1f}% vs "
        f"DGS {dgs_hit:+.1f}% delivered bytes"
    )
    return result


# -- fault-intensity sweep -----------------------------------------------------

_SWEEP_HEADERS = ["intensity", "delivered (TB)", "lat p50 (min)",
                  "delivery vs healthy", "requeues", "fault events"]


def fault_sweep_specs(duration_s: float = 21600.0, scale: float = 0.2,
                      intensities=(0.0, 0.1, 0.25, 0.5), seed: int = 7,
                      announced: bool = True,
                      ) -> list[tuple[str, ScenarioSpec]]:
    """``(label, spec)`` grid for the fault-intensity sweep.

    Intensity 0.0 is the healthy reference cell; each positive intensity
    draws one :meth:`FaultSchedule.generate` schedule inside
    :meth:`ScenarioSpec.build` (same seed, so runs are reproducible).
    """
    num_sats, num_stations, _base_n = scaled_counts(scale)
    return [
        (f"intensity:{intensity:.2f}", ScenarioSpec.dgs(
            num_satellites=num_sats, num_stations=num_stations,
            duration_s=duration_s, fault_intensity=intensity,
            fault_seed=seed, faults_announced=announced,
        ))
        for intensity in intensities
    ]


def fault_sweep(duration_s: float = 21600.0, scale: float = 0.2,
                intensities=(0.0, 0.1, 0.25, 0.5),
                seed: int = 7, announced: bool = True,
                workers: int = 0) -> ExperimentResult:
    """Sweep seeded fault intensity over the DGS scenario.

    The analogue of the station-count sweep, along the fault axis: the
    grid from :func:`fault_sweep_specs` mixes station outages, backhaul
    partitions/latency spikes, undecoded passes, and stale-TLE windows,
    then measures delivered volume, latency, and the per-fault counters.
    Cells are submitted to the sweep runner (``workers`` processes; 0 =
    in this process) instead of looped over.
    """
    from repro.runners import SweepCell, report_from_payload, run_specs

    result = ExperimentResult(
        experiment_id="fault-sweep",
        description="DGS degradation vs injected fault intensity",
    )
    pairs = fault_sweep_specs(duration_s, scale, intensities, seed, announced)
    payloads = run_specs(
        [SweepCell(label, spec) for label, spec in pairs], workers=workers
    )
    rows: list[list[str]] = []
    healthy_tb = None
    for intensity, (label, _spec) in zip(intensities, pairs):
        report = report_from_payload(payloads[label])
        if healthy_tb is None:
            healthy_tb = report.delivered_tb
        degradation = (
            100.0 * (report.delivered_tb - healthy_tb) / healthy_tb
            if healthy_tb else 0.0
        )
        counters = report.fault_counters
        rows.append([
            f"{intensity:.2f}",
            f"{report.delivered_tb:.2f}",
            f"{report.latency_percentiles_min((50,))[50]:.1f}",
            f"{degradation:+.1f}%",
            str(report.retransmitted_chunks),
            str(sum(counters.values())),
        ])
        result.series[label] = [report.delivered_tb]
        for name, count in sorted(counters.items()):
            result.series[f"{label}:{name}"] = [float(count)]
    result.notes.append(format_table(_SWEEP_HEADERS, rows,
                                     title="-- fault-intensity sweep --"))
    return result
