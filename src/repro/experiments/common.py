"""Shared experiment plumbing: results, scaling, and report rendering."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.tables import ComparisonTable


@dataclass
class ExperimentResult:
    """One figure's reproduction: raw series + the paper comparison."""

    experiment_id: str
    description: str
    #: series label -> raw sample values (latency minutes, backlog GB, ...)
    series: dict[str, list[float]] = field(default_factory=dict)
    tables: list[ComparisonTable] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def cdf(self, label: str) -> EmpiricalCDF:
        return EmpiricalCDF(self.series[label])

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.description} =="]
        for table in self.tables:
            parts.append(table.render())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

    def to_json(self) -> str:
        """Machine-readable result: series, table rows, and notes."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "description": self.description,
                "series": self.series,
                "tables": [
                    {
                        "title": t.title,
                        "unit": t.unit,
                        "rows": [
                            {"metric": m, "paper": p, "measured": v}
                            for m, p, v in t.rows
                        ],
                    }
                    for t in self.tables
                ],
                "notes": self.notes,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        raw = json.loads(text)
        result = cls(
            experiment_id=raw["experiment_id"],
            description=raw["description"],
            series={k: list(v) for k, v in raw["series"].items()},
            notes=list(raw["notes"]),
        )
        for table_raw in raw["tables"]:
            table = ComparisonTable(title=table_raw["title"],
                                    unit=table_raw["unit"])
            for row in table_raw["rows"]:
                table.add(row["metric"], row["paper"], row["measured"])
            result.tables.append(table)
        return result


def scaled_counts(scale: float) -> tuple[int, int, int]:
    """(satellites, DGS stations, baseline stations) for a scale factor.

    The baseline keeps its 5 stations down to very small scales -- the
    paper's contrast is 'many cheap vs 5 expensive', and shrinking 5
    proportionally would destroy the scenario's meaning long before it
    saved any time.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    satellites = max(5, round(259 * scale))
    stations = max(8, round(173 * scale))
    baseline_stations = 5 if scale >= 0.05 else 3
    return satellites, stations, baseline_stations
