"""Figure 3b: CDF of capture-to-reception latency.

Paper numbers (minutes, median / p90 / p99):

* Baseline:  58 / 293 / 438
* DGS:       12 /  44 /  88    (4-5x lower across metrics)
* DGS(25%):  20 /  58 /  88    (lower capacity than baseline, still wins)
"""

from __future__ import annotations

from repro.analysis.tables import ComparisonTable
from repro.experiments.common import ExperimentResult
from repro.experiments.paper_runs import get_run

PAPER_LATENCY_MIN = {
    "baseline": {50: 58.0, 90: 293.0, 99: 438.0},
    "dgs": {50: 12.0, 90: 44.0, 99: 88.0},
    "dgs25": {50: 20.0, 90: 58.0, 99: 88.0},
}

_VARIANTS = {"baseline": "baseline-L", "dgs": "dgs-L", "dgs25": "dgs25-L"}


def run(duration_s: float = 86400.0, scale: float = 1.0,
        workers: int = 0) -> ExperimentResult:
    """Reproduce Fig. 3b: latency CDFs for Baseline, DGS, and DGS(25%).

    Variants are submitted to the sweep runner as one grid (``workers``
    processes; 0 = in this process) instead of looped over.
    """
    from repro.experiments.paper_runs import ensure_runs

    ensure_runs(_VARIANTS.values(), duration_s, scale, workers=workers)
    result = ExperimentResult(
        experiment_id="fig3b",
        description="capture-to-reception latency CDF (minutes)",
    )
    for label, variant in _VARIANTS.items():
        scenario = get_run(variant, duration_s, scale)
        latencies_min = [v / 60.0 for v in scenario.report.all_latencies_s()]
        result.series[label] = latencies_min
        table = ComparisonTable(
            title=f"Fig 3b latency, {label} "
                  f"({scenario.num_satellites} sats, {scenario.num_stations} stations)",
            unit="min",
        )
        measured = scenario.report.latency_percentiles_min((50, 90, 99))
        for pct, paper_value in PAPER_LATENCY_MIN[label].items():
            table.add(f"p{pct}", paper_value, measured[pct])
        result.tables.append(table)
    dgs = get_run("dgs-L", duration_s, scale).report
    base = get_run("baseline-L", duration_s, scale).report
    base_p = base.latency_percentiles_min((50, 90))
    dgs_p = dgs.latency_percentiles_min((50, 90))
    if dgs_p[50] > 0 and dgs_p[90] > 0:
        result.notes.append(
            f"latency improvement DGS vs baseline: "
            f"median {base_p[50] / dgs_p[50]:.1f}x, p90 {base_p[90] / dgs_p[90]:.1f}x "
            "(paper: 4-5x)"
        )
    return result
