"""Setup validation: the Sec. 2/Sec. 4 environment claims.

Before trusting the headline figures, this experiment checks that the
substrate reproduces the physical facts the paper leans on:

* a LEO pass lasts "seven to ten minutes" at useful elevations;
* the best-known baseline link peaks around 1.6 Gbps and "can download
  data up to 80 GB in a single pass";
* a satellite does "two-to-three passes per ground station per day";
* a baseline station's throughput is ~10x a DGS node's median.
"""

from __future__ import annotations

from datetime import timedelta

import numpy as np

from repro.analysis.tables import ComparisonTable
from repro.baseline.system import measured_node_throughput_ratio
from repro.core.scenarios import PAPER_EPOCH, build_paper_fleet
from repro.experiments.common import ExperimentResult
from repro.groundstations.network import baseline_polar_network
from repro.linkbudget.budget import LinkBudget, baseline_receiver
from repro.orbits.passes import PassPredictor


def run(duration_s: float = 86400.0, scale: float = 1.0) -> ExperimentResult:
    """Validate pass durations, peak rates, pass counts, and the 10x ratio."""
    result = ExperimentResult(
        experiment_id="setup",
        description="environment validation against Sec. 2 / Sec. 4 claims",
    )
    sample_sats = max(8, int(16 * scale))
    fleet = build_paper_fleet(count=sample_sats)
    # Use the mid-latitude baseline site (Awarua, 46.5 S): the paper's
    # "two-to-three passes per ground station per day" describes typical
    # station geometry; polar sites see polar orbiters far more often.
    station = baseline_polar_network(count=5)[4]
    # Pass prediction is cheap; always validate over a full day so the
    # passes-per-day claim is measured on its natural unit.
    horizon = timedelta(seconds=max(duration_s, 86400.0))

    durations_min: list[float] = []
    passes_per_sat: list[int] = []
    best_pass_gb = 0.0
    budget = LinkBudget(fleet[0].radio, baseline_receiver())
    for sat in fleet:
        predictor = PassPredictor(
            sat.position_teme,
            station.latitude_deg,
            station.longitude_deg,
            station.altitude_km,
            min_elevation_deg=station.min_elevation_deg,
        )
        windows = list(predictor.passes(PAPER_EPOCH, PAPER_EPOCH + horizon))
        passes_per_sat.append(len(windows))
        for w in windows:
            durations_min.append(w.duration_seconds / 60.0)
            # Integrate the rate over the pass at 30 s resolution.
            bits = 0.0
            steps = max(1, int(w.duration_seconds // 30.0))
            for k in range(steps):
                when = w.rise_time + timedelta(seconds=30.0 * k)
                el = predictor.elevation_deg(when)
                if el <= 0:
                    continue
                import math

                re, alt = 6371.0, 500.0
                el_rad = math.radians(el)
                rng = -re * math.sin(el_rad) + math.sqrt(
                    (re * math.sin(el_rad)) ** 2 + alt * (alt + 2 * re)
                )
                bits += budget.evaluate(rng, el, station.latitude_deg).bitrate_bps * 30.0
            best_pass_gb = max(best_pass_gb, bits / 8e9)

    table = ComparisonTable(title="Setup validation", unit="see metric")
    if durations_min:
        good = [d for d in durations_min if d >= 4.0]
        if good:
            table.add("typical pass duration (min, p75 of >=4min passes)",
                      8.5, float(np.percentile(good, 75)))
    table.add("peak baseline link (Gbps)", 1.6,
              budget.evaluate(500.0, 90.0, station.latitude_deg).bitrate_bps / 1e9)
    table.add("best single-pass download (GB)", 80.0, best_pass_gb)
    if passes_per_sat:
        table.add("passes per station per day", 2.5,
                  float(np.mean(passes_per_sat)) * 86400.0 / horizon.total_seconds())
    table.add("baseline/DGS node median throughput ratio", 10.0,
              measured_node_throughput_ratio(fleet[0].radio))
    result.tables.append(table)
    result.series["pass_durations_min"] = durations_min
    result.notes.append(
        "pass counts average over all orbit inclinations; polar satellites "
        "alone see the station 3-5x per day, mid-inclination ones ~0-2x"
    )
    return result
