"""Ablations over DGS's design choices (Sec. 3 discussion points).

The paper motivates several design decisions without evaluating them all;
these ablations quantify each on the same simulation substrate:

* **matching algorithm** -- stable (the paper's choice) vs optimal vs
  greedy: how much global value does stability cost?
* **transmit-capable fraction** -- the hybrid knob: how few uplink
  stations can DGS run on before plan/ack starvation bites?
  (Run with plan distribution enforced, i.e. satellites must hold a fresh
  plan to use receive-only stations.)
* **weather sensitivity** -- clear skies vs the synthetic month vs a
  doubled-intensity month: how much does geographic diversity buy?
* **forecast error** -- scheduling on forecasts instead of truth: losses
  from rate over-prediction in the ack-free design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.scenarios import ScenarioSpec, build_paper_weather
from repro.experiments.common import ExperimentResult, scaled_counts


def _dgs_sim(**kwargs):
    """Assemble one DGS simulation through the unified spec."""
    return ScenarioSpec.dgs(**kwargs).build().simulation


@dataclass
class AblationRow:
    label: str
    median_latency_min: float
    p90_latency_min: float
    median_backlog_gb: float
    delivered_tb: float
    extra: str = ""

    def cells(self) -> list[str]:
        return [
            self.label,
            f"{self.median_latency_min:.1f}",
            f"{self.p90_latency_min:.1f}",
            f"{self.median_backlog_gb:.2f}",
            f"{self.delivered_tb:.2f}",
            self.extra,
        ]


_HEADERS = ["variant", "lat p50 (min)", "lat p90 (min)",
            "backlog p50 (GB)", "delivered (TB)", "notes"]


def _row(label: str, report, extra: str = "") -> AblationRow:
    lat = report.latency_percentiles_min((50, 90))
    backlog = report.backlog_percentiles_gb((50,))
    return AblationRow(
        label=label,
        median_latency_min=lat[50],
        p90_latency_min=lat[90],
        median_backlog_gb=backlog[50],
        delivered_tb=report.delivered_tb,
        extra=extra,
    )


def run_matching(duration_s: float = 21600.0, scale: float = 0.3) -> list[AblationRow]:
    """Stable vs optimal vs greedy matching on identical scenarios.

    Reports fairness alongside totals: the paper picks stable matching
    *because* a fragmented network needs no participant to lose out; the
    Jain index over per-satellite deliveries is that claim in one number.
    """
    from repro.analysis.fairness import matching_fairness

    num_sats, num_stations, _ = scaled_counts(scale)
    rows = []
    for matcher in ("stable", "optimal", "greedy"):
        sim = _dgs_sim(
            matcher=matcher,
            num_satellites=num_sats,
            num_stations=num_stations,
            duration_s=duration_s,
        )
        report = sim.run()
        fairness = matching_fairness(report)
        rows.append(_row(
            matcher, report,
            extra=f"Jain={fairness.jain:.3f} slews={sim.link_changes}",
        ))
    return rows


def run_tx_fraction(duration_s: float = 21600.0, scale: float = 0.3,
                    fractions=(0.02, 0.05, 0.1, 0.3)) -> list[AblationRow]:
    """Sweep the hybrid knob with plan distribution enforced."""
    num_sats, num_stations, _ = scaled_counts(scale)
    rows = []
    for fraction in fractions:
        sim = _dgs_sim(
            num_satellites=num_sats,
            num_stations=num_stations,
            duration_s=duration_s,
            enforce_plan_distribution=True,
            tx_capable_fraction=fraction,
        )
        report = sim.run()
        rows.append(_row(f"tx={fraction:.0%}", report,
                         extra=f"requeued={report.retransmitted_chunks}"))
    return rows


def run_weather(duration_s: float = 21600.0, scale: float = 0.3) -> list[AblationRow]:
    """Clear sky vs nominal vs doubled rain intensity."""
    num_sats, num_stations, _ = scaled_counts(scale)
    rows = []
    for label, intensity in (("clear", 0.0), ("nominal", 1.0), ("stormy", 2.5)):
        sim = _dgs_sim(
            num_satellites=num_sats,
            num_stations=num_stations,
            duration_s=duration_s,
        )
        sim.truth_weather = build_paper_weather(seed=3, intensity_scale=intensity)
        sim.scheduler.weather = sim.truth_weather
        rows.append(_row(label, sim.run()))
    return rows


def run_horizon(duration_s: float = 21600.0, scale: float = 0.3,
                horizons=(1, 5, 15)) -> list[AblationRow]:
    """Per-instant (the paper) vs receding-horizon scheduling (future work).

    H=1 is the paper's scheduler; larger windows trade instantaneous value
    for lookahead.  The paper conjectured cross-time optimization "can
    further benefit DGS"; this ablation measures it.
    """
    from repro.scheduling.horizon import HorizonScheduler

    num_sats, num_stations, _ = scaled_counts(scale)
    rows = []
    for horizon in horizons:
        sim = _dgs_sim(
            num_satellites=num_sats,
            num_stations=num_stations,
            duration_s=duration_s,
        )
        if horizon > 1:
            base = sim.scheduler
            sim.scheduler = HorizonScheduler(
                base.satellites, base.network, base.value_function,
                matcher=base.matcher_name, weather=base.weather,
                step_s=base.step_s, horizon_steps=horizon,
                replan_steps=max(1, horizon // 2),
            )
        rows.append(_row(f"H={horizon}", sim.run()))
    return rows


def run_beamforming(duration_s: float = 21600.0, scale: float = 0.3,
                    beam_counts=(1, 2, 4)) -> list[AblationRow]:
    """Station beamforming (Sec. 3.3 future work): beams vs throughput.

    Power-split beams serve more satellites at lower per-link rate; the
    interesting question is where the trade nets out for a contended
    network.
    """
    from repro.scheduling.beamforming import BeamformingScheduler

    num_sats, num_stations, _ = scaled_counts(scale)
    rows = []
    for beams in beam_counts:
        sim = _dgs_sim(
            num_satellites=num_sats,
            num_stations=num_stations,
            duration_s=duration_s,
        )
        if beams > 1:
            base = sim.scheduler
            sim.scheduler = BeamformingScheduler(
                base.satellites, base.network, base.value_function,
                matcher=base.matcher_name, weather=base.weather,
                step_s=base.step_s, beams=beams,
            )
        rows.append(_row(f"beams={beams}", sim.run()))
    return rows


def run_forecast_error(duration_s: float = 21600.0,
                       scale: float = 0.3) -> list[AblationRow]:
    """Truth scheduling vs forecast-based scheduling (rate mispredictions)."""
    num_sats, num_stations, _ = scaled_counts(scale)
    rows = []
    for label, use_forecast in (("oracle weather", False), ("forecast", True)):
        sim = _dgs_sim(
            num_satellites=num_sats,
            num_stations=num_stations,
            duration_s=duration_s,
            use_forecast=use_forecast,
        )
        report = sim.run()
        lost_gb = report.lost_transmission_bits / 8e9
        rows.append(_row(label, report, extra=f"lost={lost_gb:.1f} GB"))
    return rows


def run_band_sweep(duration_s: float = 21600.0, scale: float = 0.3) -> list[AblationRow]:
    """Downlink band sweep: X (the paper's default) vs Ku vs Ka.

    Sec. 2: "Some designs are also exploring higher frequencies (Ku band
    ... and Ka band ...) for downlink."  Dish gain and FSPL both scale as
    f^2 and cancel; what changes is rain sensitivity, which grows steeply
    with frequency -- exactly why the geographic diversity argument
    strengthens at Ku/Ka.
    """
    from dataclasses import replace

    from repro.linkbudget.budget import RadioConfig

    num_sats, num_stations, _ = scaled_counts(scale)
    rows = []
    for label, freq in (("X 8.2 GHz", 8.2), ("Ku 14 GHz", 14.0),
                        ("Ka 26.5 GHz", 26.5)):
        sim = _dgs_sim(
            num_satellites=num_sats,
            num_stations=num_stations,
            duration_s=duration_s,
        )
        radio = RadioConfig(frequency_ghz=freq)
        for sat in sim.satellites:
            sat.radio = radio
        # Use stormier weather so the band differences are visible.
        sim.truth_weather = build_paper_weather(seed=3, intensity_scale=2.0)
        sim.scheduler.weather = sim.truth_weather
        sim.scheduler._budgets.clear()
        rows.append(_row(label, sim.run()))
    return rows


def run_execution_mode(duration_s: float = 21600.0,
                       scale: float = 0.3) -> list[AblationRow]:
    """Live matching (the paper's simulation) vs planned execution.

    Planned mode is Sec. 3's actual operational model: stations follow the
    newest Internet-distributed plan while satellites follow whatever plan
    they last received at a transmit-capable contact.  The delta between
    the rows is the cost of plan distribution latency and staleness.
    """
    num_sats, num_stations, _ = scaled_counts(scale)
    rows = []
    for label, mode in (("live", "live"), ("planned 1h refresh", "planned")):
        sim = _dgs_sim(
            num_satellites=num_sats,
            num_stations=num_stations,
            duration_s=duration_s,
        )
        if mode == "planned":
            sim.config.execution_mode = "planned"
        report = sim.run()
        extra = ""
        if mode == "planned":
            extra = f"mismatch steps={sim.plan_mismatch_steps}"
        rows.append(_row(label, report, extra=extra))
    return rows


def run(duration_s: float = 21600.0, scale: float = 0.3) -> ExperimentResult:
    """Run every ablation; render one table per design dimension."""
    result = ExperimentResult(
        experiment_id="ablations",
        description="design-choice ablations (Sec. 3 discussion)",
    )
    from repro.analysis.tables import ComparisonTable

    sections = (
        ("matching algorithm", run_matching),
        ("tx-capable fraction", run_tx_fraction),
        ("weather intensity", run_weather),
        ("forecast error", run_forecast_error),
        ("scheduling horizon", run_horizon),
        ("station beamforming", run_beamforming),
        ("downlink band", run_band_sweep),
        ("execution mode", run_execution_mode),
    )
    for title, fn in sections:
        rows = fn(duration_s, scale)
        rendered = format_table(_HEADERS, [r.cells() for r in rows],
                                title=f"-- {title} --")
        result.notes.append(rendered)
        for r in rows:
            result.series[f"{title}:{r.label}"] = [r.median_latency_min]
    return result
