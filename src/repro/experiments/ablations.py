"""Ablations over DGS's design choices (Sec. 3 discussion points).

The paper motivates several design decisions without evaluating them all;
these ablations quantify each on the same simulation substrate:

* **matching algorithm** -- stable (the paper's choice) vs optimal vs
  greedy: how much global value does stability cost?
* **transmit-capable fraction** -- the hybrid knob: how few uplink
  stations can DGS run on before plan/ack starvation bites?
  (Run with plan distribution enforced, i.e. satellites must hold a fresh
  plan to use receive-only stations.)
* **weather sensitivity** -- clear skies vs the synthetic month vs a
  doubled-intensity month: how much does geographic diversity buy?
* **forecast error** -- scheduling on forecasts instead of truth: losses
  from rate over-prediction in the ack-free design.

Every variant is a frozen :class:`ScenarioSpec`; sections build
``(label, spec)`` grids and submit them to the sweep runner
(:func:`repro.runners.run_specs`) instead of looping over hand-mutated
simulations, so the same grids run serially in-process, across a worker
pool, or from the ``repro sweep`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.scenarios import ScenarioSpec
from repro.experiments.common import ExperimentResult, scaled_counts
from repro.simulation.metrics import SimulationReport

#: ``(label, spec)`` grid of one ablation section.
SectionSpecs = list[tuple[str, ScenarioSpec]]


@dataclass
class AblationRow:
    label: str
    median_latency_min: float
    p90_latency_min: float
    median_backlog_gb: float
    delivered_tb: float
    extra: str = ""

    def cells(self) -> list[str]:
        return [
            self.label,
            f"{self.median_latency_min:.1f}",
            f"{self.p90_latency_min:.1f}",
            f"{self.median_backlog_gb:.2f}",
            f"{self.delivered_tb:.2f}",
            self.extra,
        ]


_HEADERS = ["variant", "lat p50 (min)", "lat p90 (min)",
            "backlog p50 (GB)", "delivered (TB)", "notes"]


def _row(label: str, report: SimulationReport,
         extra: str = "") -> AblationRow:
    lat = report.latency_percentiles_min((50, 90))
    backlog = report.backlog_percentiles_gb((50,))
    return AblationRow(
        label=label,
        median_latency_min=lat[50],
        p90_latency_min=lat[90],
        median_backlog_gb=backlog[50],
        delivered_tb=report.delivered_tb,
        extra=extra,
    )


def _run_section(pairs: SectionSpecs,
                 workers: int = 0) -> list[tuple[str, SimulationReport]]:
    """Submit one section's grid to the sweep runner; keep input order."""
    from repro.runners import SweepCell, report_from_payload, run_specs

    payloads = run_specs(
        [SweepCell(label, spec) for label, spec in pairs], workers=workers
    )
    return [(label, report_from_payload(payloads[label]))
            for label, _spec in pairs]


# -- section grids ------------------------------------------------------------


def matching_specs(duration_s: float = 21600.0,
                   scale: float = 0.3) -> SectionSpecs:
    num_sats, num_stations, _ = scaled_counts(scale)
    return [
        (matcher, ScenarioSpec.dgs(
            matcher=matcher, num_satellites=num_sats,
            num_stations=num_stations, duration_s=duration_s,
        ))
        for matcher in ("stable", "optimal", "greedy")
    ]


def tx_fraction_specs(duration_s: float = 21600.0, scale: float = 0.3,
                      fractions=(0.02, 0.05, 0.1, 0.3)) -> SectionSpecs:
    num_sats, num_stations, _ = scaled_counts(scale)
    return [
        (f"tx={fraction:.0%}", ScenarioSpec.dgs(
            num_satellites=num_sats, num_stations=num_stations,
            duration_s=duration_s, enforce_plan_distribution=True,
            tx_capable_fraction=fraction,
        ))
        for fraction in fractions
    ]


def weather_specs(duration_s: float = 21600.0,
                  scale: float = 0.3) -> SectionSpecs:
    num_sats, num_stations, _ = scaled_counts(scale)
    return [
        (label, ScenarioSpec.dgs(
            num_satellites=num_sats, num_stations=num_stations,
            duration_s=duration_s, weather_intensity=intensity,
        ))
        for label, intensity in (("clear", 0.0), ("nominal", 1.0),
                                 ("stormy", 2.5))
    ]


def horizon_specs(duration_s: float = 21600.0, scale: float = 0.3,
                  horizons=(1, 5, 15)) -> SectionSpecs:
    """Per-instant (the paper, H=1) vs receding-horizon scheduling."""
    num_sats, num_stations, _ = scaled_counts(scale)
    return [
        (f"H={horizon}", ScenarioSpec.dgs(
            num_satellites=num_sats, num_stations=num_stations,
            duration_s=duration_s, scheduler="horizon",
            horizon_steps=horizon,
        ))
        for horizon in horizons
    ]


def beamforming_specs(duration_s: float = 21600.0, scale: float = 0.3,
                      beam_counts=(1, 2, 4)) -> SectionSpecs:
    """Station beamforming (Sec. 3.3 future work): beams vs throughput."""
    num_sats, num_stations, _ = scaled_counts(scale)
    return [
        (f"beams={beams}", ScenarioSpec.dgs(
            num_satellites=num_sats, num_stations=num_stations,
            duration_s=duration_s, scheduler="beamforming", beams=beams,
        ))
        for beams in beam_counts
    ]


def forecast_error_specs(duration_s: float = 21600.0,
                         scale: float = 0.3) -> SectionSpecs:
    num_sats, num_stations, _ = scaled_counts(scale)
    return [
        (label, ScenarioSpec.dgs(
            num_satellites=num_sats, num_stations=num_stations,
            duration_s=duration_s, use_forecast=use_forecast,
        ))
        for label, use_forecast in (("oracle weather", False),
                                    ("forecast", True))
    ]


def band_sweep_specs(duration_s: float = 21600.0,
                     scale: float = 0.3) -> SectionSpecs:
    """Downlink band sweep: X (the paper's default) vs Ku vs Ka.

    Sec. 2: "Some designs are also exploring higher frequencies (Ku band
    ... and Ka band ...) for downlink."  Dish gain and FSPL both scale as
    f^2 and cancel; what changes is rain sensitivity, which grows steeply
    with frequency -- exactly why the geographic diversity argument
    strengthens at Ku/Ka.  Runs under a stormier month (2x intensity) so
    the band differences are visible.
    """
    num_sats, num_stations, _ = scaled_counts(scale)
    return [
        (label, ScenarioSpec.dgs(
            num_satellites=num_sats, num_stations=num_stations,
            duration_s=duration_s, frequency_ghz=freq,
            weather_intensity=2.0,
        ))
        for label, freq in (("X 8.2 GHz", 8.2), ("Ku 14 GHz", 14.0),
                            ("Ka 26.5 GHz", 26.5))
    ]


def execution_mode_specs(duration_s: float = 21600.0,
                         scale: float = 0.3) -> SectionSpecs:
    """Live matching (the paper's simulation) vs planned execution."""
    num_sats, num_stations, _ = scaled_counts(scale)
    return [
        (label, ScenarioSpec.dgs(
            num_satellites=num_sats, num_stations=num_stations,
            duration_s=duration_s, execution_mode=mode,
        ))
        for label, mode in (("live", "live"),
                            ("planned 1h refresh", "planned"))
    ]


def section_specs(duration_s: float = 21600.0, scale: float = 0.3,
                  ) -> list[tuple[str, SectionSpecs]]:
    """Every section's grid, keyed by its table title."""
    return [
        ("matching algorithm", matching_specs(duration_s, scale)),
        ("tx-capable fraction", tx_fraction_specs(duration_s, scale)),
        ("weather intensity", weather_specs(duration_s, scale)),
        ("forecast error", forecast_error_specs(duration_s, scale)),
        ("scheduling horizon", horizon_specs(duration_s, scale)),
        ("station beamforming", beamforming_specs(duration_s, scale)),
        ("downlink band", band_sweep_specs(duration_s, scale)),
        ("execution mode", execution_mode_specs(duration_s, scale)),
    ]


# -- section runners -----------------------------------------------------------


def run_matching(duration_s: float = 21600.0, scale: float = 0.3,
                 workers: int = 0) -> list[AblationRow]:
    """Stable vs optimal vs greedy matching on identical scenarios.

    Reports fairness alongside totals: the paper picks stable matching
    *because* a fragmented network needs no participant to lose out; the
    Jain index over per-satellite deliveries is that claim in one number.
    """
    from repro.analysis.fairness import matching_fairness

    rows = []
    for label, report in _run_section(matching_specs(duration_s, scale),
                                      workers):
        fairness = matching_fairness(report)
        rows.append(_row(
            label, report,
            extra=f"Jain={fairness.jain:.3f} slews={report.link_changes}",
        ))
    return rows


def run_tx_fraction(duration_s: float = 21600.0, scale: float = 0.3,
                    fractions=(0.02, 0.05, 0.1, 0.3),
                    workers: int = 0) -> list[AblationRow]:
    """Sweep the hybrid knob with plan distribution enforced."""
    pairs = tx_fraction_specs(duration_s, scale, fractions)
    return [
        _row(label, report,
             extra=f"requeued={report.retransmitted_chunks}")
        for label, report in _run_section(pairs, workers)
    ]


def run_weather(duration_s: float = 21600.0, scale: float = 0.3,
                workers: int = 0) -> list[AblationRow]:
    """Clear sky vs nominal vs doubled rain intensity."""
    return [
        _row(label, report)
        for label, report in _run_section(weather_specs(duration_s, scale),
                                          workers)
    ]


def run_horizon(duration_s: float = 21600.0, scale: float = 0.3,
                horizons=(1, 5, 15), workers: int = 0) -> list[AblationRow]:
    """Per-instant (the paper) vs receding-horizon scheduling (future work).

    H=1 is the paper's scheduler; larger windows trade instantaneous value
    for lookahead.  The paper conjectured cross-time optimization "can
    further benefit DGS"; this ablation measures it.
    """
    pairs = horizon_specs(duration_s, scale, horizons)
    return [
        _row(label, report)
        for label, report in _run_section(pairs, workers)
    ]


def run_beamforming(duration_s: float = 21600.0, scale: float = 0.3,
                    beam_counts=(1, 2, 4),
                    workers: int = 0) -> list[AblationRow]:
    """Station beamforming (Sec. 3.3 future work): beams vs throughput.

    Power-split beams serve more satellites at lower per-link rate; the
    interesting question is where the trade nets out for a contended
    network.
    """
    pairs = beamforming_specs(duration_s, scale, beam_counts)
    return [
        _row(label, report)
        for label, report in _run_section(pairs, workers)
    ]


def run_forecast_error(duration_s: float = 21600.0, scale: float = 0.3,
                       workers: int = 0) -> list[AblationRow]:
    """Truth scheduling vs forecast-based scheduling (rate mispredictions)."""
    rows = []
    for label, report in _run_section(
        forecast_error_specs(duration_s, scale), workers
    ):
        lost_gb = report.lost_transmission_bits / 8e9
        rows.append(_row(label, report, extra=f"lost={lost_gb:.1f} GB"))
    return rows


def run_band_sweep(duration_s: float = 21600.0, scale: float = 0.3,
                   workers: int = 0) -> list[AblationRow]:
    """Downlink band sweep: X (the paper's default) vs Ku vs Ka."""
    return [
        _row(label, report)
        for label, report in _run_section(band_sweep_specs(duration_s, scale),
                                          workers)
    ]


def run_execution_mode(duration_s: float = 21600.0, scale: float = 0.3,
                       workers: int = 0) -> list[AblationRow]:
    """Live matching (the paper's simulation) vs planned execution.

    Planned mode is Sec. 3's actual operational model: stations follow the
    newest Internet-distributed plan while satellites follow whatever plan
    they last received at a transmit-capable contact.  The delta between
    the rows is the cost of plan distribution latency and staleness.
    """
    rows = []
    for label, report in _run_section(
        execution_mode_specs(duration_s, scale), workers
    ):
        extra = ""
        if label != "live":
            extra = f"mismatch steps={report.plan_mismatch_steps}"
        rows.append(_row(label, report, extra=extra))
    return rows


def run(duration_s: float = 21600.0, scale: float = 0.3,
        workers: int = 0) -> ExperimentResult:
    """Run every ablation; render one table per design dimension."""
    result = ExperimentResult(
        experiment_id="ablations",
        description="design-choice ablations (Sec. 3 discussion)",
    )
    sections = (
        ("matching algorithm", run_matching),
        ("tx-capable fraction", run_tx_fraction),
        ("weather intensity", run_weather),
        ("forecast error", run_forecast_error),
        ("scheduling horizon", run_horizon),
        ("station beamforming", run_beamforming),
        ("downlink band", run_band_sweep),
        ("execution mode", run_execution_mode),
    )
    for title, fn in sections:
        rows = fn(duration_s, scale, workers=workers)
        rendered = format_table(_HEADERS, [r.cells() for r in rows],
                                title=f"-- {title} --")
        result.notes.append(rendered)
        for r in rows:
            result.series[f"{title}:{r.label}"] = [r.median_latency_min]
    return result
