"""Experiment harness: one module per paper figure plus ablations.

Each experiment module exposes a ``run(duration_s, scale)`` function that
executes the scenarios behind one figure of the paper and returns an
:class:`ExperimentResult` carrying the raw per-series samples, the
paper-vs-measured comparison table, and a rendered report.  ``scale``
shrinks the populations proportionally (satellites, stations, baseline
rate pressure) so tests and quick benches exercise the identical code path
at laptop-seconds cost; ``scale=1.0`` is the paper's full setup.

Shared headline runs (baseline / DGS / DGS 25%) are computed once and
memoized in :mod:`repro.experiments.paper_runs` because Figs. 3a and 3b
read different metrics off the same three simulations.
"""

from repro.experiments.common import ExperimentResult
from repro.experiments import (
    ablations,
    fig3a,
    fig3b,
    fig3c,
    robustness,
    setup_validation,
    storage_requirement,
    summary,
)

__all__ = [
    "ExperimentResult",
    "fig3a",
    "fig3b",
    "fig3c",
    "summary",
    "setup_validation",
    "ablations",
    "robustness",
    "storage_requirement",
]
