"""The ground-station model.

Sec. 3.1: "each ground station g_j is represented by its latitude,
longitude, ownership information, and data downlink constraints.  The
downlink constraints are represented as a M-bit bitmap, where bit i is 1 if
data downlink from s_i is allowed."  We keep exactly that representation
(arbitrary-size Python int as the bitmap) plus the hybrid-capability flag
and the receiver hardware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.linkbudget.antennas import ReceiverSpec
from repro.linkbudget.budget import dgs_node_receiver


class StationCapability(enum.Enum):
    """What a station's RF chain can do.

    The paper's hybrid design (Sec. 3): most stations are RECEIVE_ONLY;
    a small set is TRANSMIT_CAPABLE and carries the uplink (plans, acks).
    """

    RECEIVE_ONLY = "receive_only"
    TRANSMIT_CAPABLE = "transmit_capable"


@dataclass
class DownlinkConstraints:
    """Per-satellite downlink permissions as the paper's M-bit bitmap.

    ``bitmap`` bit ``i`` is 1 when downlink from satellite index ``i`` is
    allowed.  ``allow_all`` (bitmap=-1 conceptually) is the common case for
    volunteer stations.
    """

    bitmap: int = -1  # -1 = all satellites allowed

    @classmethod
    def allow_all(cls) -> "DownlinkConstraints":
        return cls(bitmap=-1)

    @classmethod
    def deny_all(cls) -> "DownlinkConstraints":
        return cls(bitmap=0)

    @classmethod
    def from_allowed_indices(cls, indices, total: int) -> "DownlinkConstraints":
        bitmap = 0
        for idx in indices:
            if not 0 <= idx < total:
                raise ValueError(f"satellite index {idx} out of range 0..{total-1}")
            bitmap |= 1 << idx
        return cls(bitmap=bitmap)

    def allows(self, satellite_index: int) -> bool:
        if satellite_index < 0:
            raise ValueError("satellite index cannot be negative")
        if self.bitmap == -1:
            return True
        return bool((self.bitmap >> satellite_index) & 1)

    def allow(self, satellite_index: int) -> None:
        if self.bitmap == -1:
            return
        self.bitmap |= 1 << satellite_index

    def deny(self, satellite_index: int) -> None:
        if self.bitmap == -1:
            raise ValueError(
                "cannot deny on an allow-all constraint; build an explicit bitmap"
            )
        self.bitmap &= ~(1 << satellite_index)


@dataclass
class GroundStation:
    """One ground station: location, capability, constraints, hardware."""

    station_id: str
    latitude_deg: float
    longitude_deg: float
    altitude_km: float = 0.0
    capability: StationCapability = StationCapability.RECEIVE_ONLY
    constraints: DownlinkConstraints = field(default_factory=DownlinkConstraints.allow_all)
    receiver: ReceiverSpec = field(default_factory=dgs_node_receiver)
    min_elevation_deg: float = 5.0
    owner: str = "volunteer"
    #: One-way Internet latency from this station to the backend, seconds.
    backhaul_latency_s: float = 0.15

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude_deg}")
        if not -180.0 <= self.longitude_deg <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude_deg}")
        if self.min_elevation_deg < 0.0:
            raise ValueError("minimum elevation cannot be negative")

    @property
    def can_transmit(self) -> bool:
        return self.capability is StationCapability.TRANSMIT_CAPABLE

    def allows_satellite(self, satellite_index: int) -> bool:
        return self.constraints.allows(satellite_index)

    def __hash__(self) -> int:
        return hash(self.station_id)
