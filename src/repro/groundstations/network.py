"""Ground-station network generators.

Two populations from the paper's evaluation (Sec. 4):

* :func:`satnogs_like_network` -- 173 stations "deployed by amateur radio
  enthusiasts".  The real SatNOGS snapshot is not redistributable, so we
  sample a population with the same footprint as the paper's Fig. 2:
  heavily clustered in Europe and North America, secondary clusters in
  East Asia and Oceania, sparse elsewhere, none in open ocean.  A
  configurable small fraction is transmit-capable (the hybrid design).
* :func:`baseline_polar_network` -- the 5 high-end stations of the
  baseline [10], polar-sited because polar-orbiting satellites pass every
  orbit (Sec. 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.groundstations.station import (
    GroundStation,
    StationCapability,
)
from repro.linkbudget.budget import baseline_receiver, dgs_node_receiver

# (name, center lat, center lon, lat sigma, lon sigma, weight) -- the
# sampling mixture approximating SatNOGS's geographic density (Fig. 2).
_REGION_CLUSTERS = (
    ("western-europe", 49.0, 7.0, 5.0, 8.0, 0.33),
    ("eastern-europe", 50.0, 25.0, 5.0, 8.0, 0.10),
    ("north-america-east", 40.0, -78.0, 6.0, 8.0, 0.12),
    ("north-america-west", 41.0, -115.0, 7.0, 8.0, 0.10),
    ("uk-ireland", 53.0, -2.5, 2.5, 3.0, 0.08),
    ("japan-korea", 36.0, 137.0, 3.5, 5.0, 0.06),
    ("australia-nz", -33.0, 148.0, 6.0, 10.0, 0.07),
    ("south-america", -25.0, -55.0, 8.0, 8.0, 0.04),
    ("south-asia", 15.0, 78.0, 8.0, 8.0, 0.04),
    ("southern-africa", -29.0, 25.0, 6.0, 6.0, 0.03),
    ("scandinavia", 62.0, 15.0, 4.0, 8.0, 0.03),
    # A thin global scatter: lone operators far from the big clusters
    # (visible in the paper's Fig. 2 across Africa, the Middle East,
    # Southeast Asia, and island sites).
    ("global-scatter", 10.0, 0.0, 30.0, 120.0, 0.06),
)


@dataclass
class GroundStationNetwork:
    """An ordered collection of ground stations with convenience queries."""

    stations: list[GroundStation] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.stations)

    def __iter__(self):
        return iter(self.stations)

    def __getitem__(self, index: int) -> GroundStation:
        return self.stations[index]

    def by_id(self, station_id: str) -> GroundStation:
        for station in self.stations:
            if station.station_id == station_id:
                return station
        raise KeyError(f"no station with id {station_id!r}")

    @property
    def transmit_capable(self) -> list[GroundStation]:
        return [s for s in self.stations if s.can_transmit]

    @property
    def receive_only(self) -> list[GroundStation]:
        return [s for s in self.stations if not s.can_transmit]

    def subset_fraction(self, fraction: float, seed: int = 0) -> "GroundStationNetwork":
        """A deterministic random subset keeping ``fraction`` of stations.

        Used for the paper's DGS(25%) variant.  At least one
        transmit-capable station is always retained so the hybrid design
        stays functional.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        rng = random.Random(seed)
        count = max(1, round(len(self.stations) * fraction))
        chosen = rng.sample(self.stations, count)
        if not any(s.can_transmit for s in chosen) and self.transmit_capable:
            chosen[0] = rng.choice(self.transmit_capable)
        # Preserve original network order for determinism downstream.
        chosen_ids = {s.station_id for s in chosen}
        return GroundStationNetwork(
            [s for s in self.stations if s.station_id in chosen_ids]
        )


def satnogs_like_network(
    count: int = 173,
    tx_capable_fraction: float = 0.1,
    seed: int = 0,
    min_elevation_deg: float = 5.0,
) -> GroundStationNetwork:
    """Generate a SatNOGS-like global volunteer network.

    ``tx_capable_fraction`` of stations (rounded, at least 1) are
    transmit-capable; the paper says "a very small number".  Station
    hardware is the low-complexity 1 m single-channel DGS node.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if not 0.0 <= tx_capable_fraction <= 1.0:
        raise ValueError("tx_capable_fraction must be in [0, 1]")
    rng = random.Random(seed)
    weights = [c[5] for c in _REGION_CLUSTERS]
    stations: list[GroundStation] = []
    for idx in range(count):
        name, clat, clon, slat, slon, _w = rng.choices(
            _REGION_CLUSTERS, weights=weights
        )[0]
        lat = max(-85.0, min(85.0, rng.gauss(clat, slat)))
        lon = ((rng.gauss(clon, slon) + 180.0) % 360.0) - 180.0
        stations.append(
            GroundStation(
                station_id=f"gs-{idx:03d}",
                latitude_deg=lat,
                longitude_deg=lon,
                altitude_km=max(0.0, rng.gauss(0.3, 0.25)),
                capability=StationCapability.RECEIVE_ONLY,
                receiver=dgs_node_receiver(),
                min_elevation_deg=min_elevation_deg,
                owner=f"volunteer-{name}",
                backhaul_latency_s=rng.uniform(0.05, 0.4),
            )
        )
    tx_count = max(1, round(count * tx_capable_fraction)) if tx_capable_fraction > 0 else 0
    for station in rng.sample(stations, tx_count):
        station.capability = StationCapability.TRANSMIT_CAPABLE
    return GroundStationNetwork(stations)


# Real-world polar/high-latitude teleport sites used by commercial EO
# operators; the baseline [10] deploys "5 such high-end ground stations
# across the planet", preferentially near the poles (Sec. 2: operators
# deploy "preferably close to the Earth's poles" to see polar orbiters
# every pass).  The polar concentration is exactly what starves
# mid-inclination satellites and produces the baseline's latency tail.
_BASELINE_SITES = (
    ("svalbard", 78.23, 15.39),
    ("troll", -72.01, 2.53),
    ("inuvik", 68.32, -133.55),
    ("fairbanks", 64.86, -147.85),
    ("awarua", -46.53, 168.38),
)


def baseline_polar_network(
    count: int = 5,
    min_elevation_deg: float = 5.0,
) -> GroundStationNetwork:
    """The centralized baseline: up to 5 high-end, mostly-polar stations.

    All are transmit-capable (centralized operators own full uplink
    licenses) and use the 4 m, 6-channel receiver of [10].
    """
    if not 1 <= count <= len(_BASELINE_SITES):
        raise ValueError(f"count must be 1..{len(_BASELINE_SITES)}")
    stations = [
        GroundStation(
            station_id=f"baseline-{name}",
            latitude_deg=lat,
            longitude_deg=lon,
            altitude_km=0.1,
            capability=StationCapability.TRANSMIT_CAPABLE,
            receiver=baseline_receiver(),
            min_elevation_deg=min_elevation_deg,
            owner="operator",
            backhaul_latency_s=0.1,
        )
        for name, lat, lon in _BASELINE_SITES[:count]
    ]
    return GroundStationNetwork(stations)
