"""Ground-station models and network generators.

A DGS ground station (paper Sec. 3) is geographically fixed, Internet
connected, usually receive-only, low complexity, and carries per-satellite
downlink constraints (the M-bit bitmap of Sec. 3.1).  This package defines
the :class:`~repro.groundstations.station.GroundStation` model and
generators for the two populations the paper evaluates: a SatNOGS-like
global volunteer network and the 5-station high-end polar baseline.
"""

from repro.groundstations.station import (
    DownlinkConstraints,
    GroundStation,
    StationCapability,
)
from repro.groundstations.network import (
    GroundStationNetwork,
    baseline_polar_network,
    satnogs_like_network,
)
from repro.groundstations.registry import (
    RegistryError,
    network_from_json,
    network_to_json,
)

__all__ = [
    "GroundStation",
    "StationCapability",
    "DownlinkConstraints",
    "GroundStationNetwork",
    "satnogs_like_network",
    "baseline_polar_network",
    "RegistryError",
    "network_to_json",
    "network_from_json",
]
