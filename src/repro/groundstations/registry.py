"""Network persistence: save/load ground-station networks as JSON.

A real DGS deployment manages its station roster as configuration --
operators join, change hardware, adjust constraints.  This module
round-trips :class:`GroundStationNetwork` (including receiver hardware
and constraint bitmaps) through a versioned JSON document, so networks
can live in files/repos rather than code.
"""

from __future__ import annotations

import json

from repro.groundstations.network import GroundStationNetwork
from repro.groundstations.station import (
    DownlinkConstraints,
    GroundStation,
    StationCapability,
)
from repro.linkbudget.antennas import AntennaSpec, ReceiverSpec

_FORMAT_VERSION = 1


class RegistryError(ValueError):
    """Raised for malformed network documents."""


def _encode_station(station: GroundStation) -> dict:
    receiver = station.receiver
    return {
        "station_id": station.station_id,
        "latitude_deg": station.latitude_deg,
        "longitude_deg": station.longitude_deg,
        "altitude_km": station.altitude_km,
        "capability": station.capability.value,
        "constraints_bitmap": (
            "-1" if station.constraints.bitmap == -1
            else format(station.constraints.bitmap, "x")
        ),
        "min_elevation_deg": station.min_elevation_deg,
        "owner": station.owner,
        "backhaul_latency_s": station.backhaul_latency_s,
        "receiver": {
            "diameter_m": receiver.antenna.diameter_m,
            "efficiency": receiver.antenna.efficiency,
            "pointing_loss_db": receiver.antenna.pointing_loss_db,
            "noise_figure_db": receiver.noise_figure_db,
            "feed_loss_db": receiver.feed_loss_db,
            "antenna_temperature_k": receiver.antenna_temperature_k,
            "channels": receiver.channels,
            "implementation_loss_db": receiver.implementation_loss_db,
        },
    }


def _decode_station(raw: dict) -> GroundStation:
    try:
        rx = raw["receiver"]
        receiver = ReceiverSpec(
            antenna=AntennaSpec(
                diameter_m=float(rx["diameter_m"]),
                efficiency=float(rx["efficiency"]),
                pointing_loss_db=float(rx["pointing_loss_db"]),
            ),
            noise_figure_db=float(rx["noise_figure_db"]),
            feed_loss_db=float(rx["feed_loss_db"]),
            antenna_temperature_k=float(rx["antenna_temperature_k"]),
            channels=int(rx["channels"]),
            implementation_loss_db=float(rx["implementation_loss_db"]),
        )
        bitmap_text = str(raw["constraints_bitmap"])
        bitmap = -1 if bitmap_text == "-1" else int(bitmap_text, 16)
        return GroundStation(
            station_id=str(raw["station_id"]),
            latitude_deg=float(raw["latitude_deg"]),
            longitude_deg=float(raw["longitude_deg"]),
            altitude_km=float(raw["altitude_km"]),
            capability=StationCapability(raw["capability"]),
            constraints=DownlinkConstraints(bitmap=bitmap),
            receiver=receiver,
            min_elevation_deg=float(raw["min_elevation_deg"]),
            owner=str(raw["owner"]),
            backhaul_latency_s=float(raw["backhaul_latency_s"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise RegistryError(f"malformed station entry: {exc}") from exc


def network_to_json(network: GroundStationNetwork) -> str:
    """Serialize a network, hardware and constraints included."""
    return json.dumps(
        {
            "version": _FORMAT_VERSION,
            "stations": [_encode_station(s) for s in network],
        },
        indent=2,
        sort_keys=True,
    )


def network_from_json(text: str) -> GroundStationNetwork:
    """Load a network document produced by :func:`network_to_json`."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise RegistryError(f"invalid JSON: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("version") != _FORMAT_VERSION:
        raise RegistryError("unsupported network document version")
    stations = raw.get("stations")
    if not isinstance(stations, list):
        raise RegistryError("document must contain a station list")
    network = GroundStationNetwork([_decode_station(s) for s in stations])
    ids = [s.station_id for s in network]
    if len(set(ids)) != len(ids):
        raise RegistryError("duplicate station ids in document")
    return network
