"""Named sweep grids: the paper's evaluation as lists of frozen cells.

Each builder returns ``list[SweepCell]`` for the sweep runner; the CLI
(``repro sweep --grid NAME``) and benches select them by name.  Explicit
grids come from a JSON file: ``[{"label": ..., "spec": {...}}, ...]``
with spec dicts in :meth:`ScenarioSpec.to_dict` form.
"""

from __future__ import annotations

import json

from repro.core.scenarios import ScenarioSpec
from repro.runners.sweep import SweepCell


def fig3_grid(duration_s: float = 86400.0,
              scale: float = 1.0) -> list[SweepCell]:
    """The four headline scenario runs behind Figs. 3a/3b/3c."""
    from repro.experiments.paper_runs import spec_for_variant

    return [
        SweepCell(variant, spec_for_variant(variant, duration_s, scale))
        for variant in ("baseline-L", "dgs-L", "dgs25-L", "dgs25-T")
    ]


def fig3_seed_grid(duration_s: float = 86400.0, scale: float = 1.0,
                   fleet_seeds: tuple[int, ...] = (7, 8)) -> list[SweepCell]:
    """Fig. 3 variants replicated over constellation draws (8+ cells).

    Varying ``fleet_seed`` makes each replicate a genuinely different
    constellation -- the robustness-of-figures grid, and the bench grid
    for the parallel runner (no cross-cell ephemeris sharing to flatter
    the serial baseline).
    """
    from dataclasses import replace

    from repro.experiments.paper_runs import spec_for_variant

    cells = []
    for seed in fleet_seeds:
        for variant in ("baseline-L", "dgs-L", "dgs25-L", "dgs25-T"):
            spec = replace(
                spec_for_variant(variant, duration_s, scale),
                fleet_seed=seed,
            )
            cells.append(SweepCell(f"{variant}@fleet{seed}", spec))
    return cells


def ablation_grid(duration_s: float = 21600.0,
                  scale: float = 0.3) -> list[SweepCell]:
    """Every spec-expressible ablation section, one flat grid.

    Sections share reference cells (e.g. ``matching algorithm:stable``
    and ``weather intensity:nominal`` are the same simulation); identical
    specs are deduplicated to their first label, since the cell identity
    is the spec, not the section naming it.
    """
    from repro.experiments import ablations

    cells = []
    seen: set[str] = set()
    for section, pairs in ablations.section_specs(duration_s, scale):
        for label, spec in pairs:
            cell = SweepCell(f"{section}:{label}", spec)
            if cell.config_sha256() in seen:
                continue
            seen.add(cell.config_sha256())
            cells.append(cell)
    return cells


def fault_sweep_grid(duration_s: float = 21600.0, scale: float = 0.2,
                     intensities: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5),
                     seed: int = 7,
                     announced: bool = True) -> list[SweepCell]:
    """The DGS fault-intensity sweep as sweep cells."""
    from repro.experiments.robustness import fault_sweep_specs

    return [
        SweepCell(label, spec)
        for label, spec in fault_sweep_specs(
            duration_s, scale, intensities=intensities, seed=seed,
            announced=announced,
        )
    ]


def constellation_scaling_grid(duration_s: float = 3600.0,
                               scale: float = 1.0) -> list[SweepCell]:
    """Mega-constellation scaling cells: Walker shells at 2.5k and 10k.

    Short-horizon (default one hour) runs of deterministic Walker-delta
    shells against the full paper network, with float32 ephemeris storage
    -- the scaling regime the spatial-culling and sparse-graph machinery
    targets.  ``scale`` multiplies the shell sizes (CI smoke uses
    ``scale=1`` with the 2.5k cell only; see the bench baselines).  The
    10k cell streams its ephemeris in windows to bound peak memory.
    """
    shells = [
        ("walker2500", 2500, 0),
        ("walker10000", 10000, 360),
    ]
    cells = []
    for label, sats, window in shells:
        count = max(4, int(round(sats * scale)))
        spec = ScenarioSpec.dgs(
            constellation="walker",
            num_satellites=count,
            duration_s=duration_s,
            ephemeris_dtype="float32",
            ephemeris_window_steps=window,
        )
        cells.append(SweepCell(label, spec))
    return cells


def demand_sweep_grid(duration_s: float = 21600.0,
                      scale: float = 0.3) -> list[SweepCell]:
    """The tenant-mix sweep: multi-tenant demand under deadline pricing.

    One legacy single-tenant reference cell, the three preset tenant
    mixes under :class:`DeadlineSlaValue`, and the balanced mix under
    plain latency pricing (same demand, paper's Phi = t) -- so the sweep
    isolates both what tenancy does to the traffic and what the
    SLA-aware pricing buys over the paper's value function.
    """
    from repro.core.scenarios import PAPER_SATELLITES, PAPER_STATIONS
    from repro.demand import tenant_mix

    sats = max(4, int(round(PAPER_SATELLITES * scale)))
    stations = max(6, int(round(PAPER_STATIONS * scale)))

    def spec(**kwargs) -> ScenarioSpec:
        return ScenarioSpec.dgs(
            num_satellites=sats, num_stations=stations,
            duration_s=duration_s, **kwargs,
        )

    cells = [SweepCell("singletenant-L", spec())]
    for mix in ("balanced", "premium-heavy", "quota-tight"):
        cells.append(SweepCell(
            f"{mix}-D", spec(tenants=tenant_mix(mix), value="deadline"),
        ))
    cells.append(SweepCell(
        "balanced-L", spec(tenants=tenant_mix("balanced"), value="latency"),
    ))
    return cells


def storm_diversity_grid(duration_s: float = 21600.0,
                         scale: float = 0.3) -> list[SweepCell]:
    """How many cheap overlapping stations equal one good one under a
    moving regional wipeout?

    One stationary-weather reference cell, the same network under storm
    tracks (how much a moving wipeout costs without diversity), the storm
    scenario with 1/2/3 receivers per pass (``div1`` isolates the
    stochastic per-copy loss model from the combiner's gain), and the
    centralized few-good-dishes baseline under the same storms -- the
    comparison the paper's geographic-redundancy argument rests on.
    """
    from repro.core.scenarios import PAPER_SATELLITES, PAPER_STATIONS

    sats = max(4, int(round(PAPER_SATELLITES * scale)))
    stations = max(6, int(round(PAPER_STATIONS * scale)))

    def spec(**kwargs) -> ScenarioSpec:
        return ScenarioSpec.dgs(
            num_satellites=sats, num_stations=stations,
            duration_s=duration_s, **kwargs,
        )

    storm = dict(weather="storms", storm_rate=2.0)
    cells = [
        SweepCell("cells-live", spec()),
        SweepCell("storms-live", spec(**storm)),
    ]
    for receivers in (1, 2, 3):
        cells.append(SweepCell(
            f"storms-div{receivers}",
            spec(**storm, execution_mode="diversity",
                 diversity_receivers=receivers),
        ))
    cells.append(SweepCell(
        "baseline-storms",
        ScenarioSpec.baseline(duration_s=duration_s,
                              num_satellites=sats, **storm),
    ))
    return cells


#: Grid names the CLI accepts.
GRID_BUILDERS = {
    "fig3": fig3_grid,
    "fig3-seeds": fig3_seed_grid,
    "ablations": ablation_grid,
    "fault-sweep": fault_sweep_grid,
    "constellation-scaling": constellation_scaling_grid,
    "demand-sweep": demand_sweep_grid,
    "storm-diversity": storm_diversity_grid,
}


def build_grid(name: str, duration_s: float, scale: float) -> list[SweepCell]:
    """A named grid, or a ValueError naming the valid choices."""
    try:
        builder = GRID_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown grid {name!r} (choose from "
            f"{', '.join(sorted(GRID_BUILDERS))})"
        ) from None
    return builder(duration_s, scale)


def cells_from_json(text: str) -> list[SweepCell]:
    """Parse an explicit grid: a JSON list of {label, spec} objects.

    Every malformed input -- bad JSON, wrong shape, unknown or
    mistyped spec fields -- raises ``ValueError`` with the offending
    entry named, so the CLI's one-line-stderr + exit-2 contract holds
    (a bare ``TypeError`` out of the spec constructor would surface as
    a traceback).
    """
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"grid file is not valid JSON: {exc}")
    if not isinstance(raw, list) or not raw:
        raise ValueError("grid file must be a non-empty JSON list")
    cells = []
    for index, item in enumerate(raw):
        if not isinstance(item, dict) or "spec" not in item:
            raise ValueError(
                f"grid entry {index} must be an object with a 'spec' key"
            )
        if not isinstance(item["spec"], dict):
            raise ValueError(f"grid entry {index}: 'spec' must be an object")
        try:
            spec = ScenarioSpec.from_dict(item["spec"])
        except (TypeError, ValueError) as exc:
            raise ValueError(f"grid entry {index}: {exc}")
        label = str(item.get("label", f"cell-{index}"))
        cells.append(SweepCell(label, spec))
    return cells


def load_grid_file(path: str) -> list[SweepCell]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ValueError(f"cannot read grid file {path!r}: {exc}")
    try:
        return cells_from_json(text)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}")
