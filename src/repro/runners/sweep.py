"""The parallel sweep engine: shard, checkpoint, merge, resume.

The paper's evaluation is a grid of simulations; this runner takes a grid
of frozen :class:`~repro.core.scenarios.ScenarioSpec` cells and executes
it across ``N`` worker processes with deterministic sharding (longest
processing time first over a static per-cell cost estimate, ties broken
by config hash), checkpointing each finished cell's report under the
spec's config hash so a killed sweep resumes where it stopped.

The merged output is the schema-versioned ``repro-sweep/1`` report: every
cell's :class:`~repro.simulation.metrics.SimulationReport`, spec, seeds,
and population sizes, ordered by config hash.  Wall-clock facts (per-cell
durations, shard assignment, worker count, stage timings) live in the
separate ``repro-sweep-manifest/1`` so the report is **byte-identical**
whether the grid ran serially, in parallel, or across a kill/resume --
the property the equivalence tests assert.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

from repro.core.scenarios import ScenarioSpec
from repro.obs.manifest import build_manifest

#: Version tags of the sweep artifacts.
SWEEP_SCHEMA = "repro-sweep/1"
SWEEP_MANIFEST_SCHEMA = "repro-sweep-manifest/1"
CELL_SCHEMA = "repro-sweep-cell/1"

#: File layout inside a run directory.
CELLS_SUBDIR = "cells"
TRACES_SUBDIR = "traces"
REPORT_FILENAME = "sweep_report.json"
MANIFEST_FILENAME = "sweep_manifest.json"


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: a display label and the frozen spec behind it."""

    label: str
    spec: ScenarioSpec

    def config_sha256(self) -> str:
        return self.spec.config_sha256()

    def cost_estimate(self) -> float:
        """Static relative cost: contact-graph work x graphs built.

        Deterministic by construction (no timing involved), so the shard
        assignment it drives is reproducible across runs and machines.
        Graph count scales beyond raw steps for the scheduler families
        that rebuild graphs per lookahead step: the horizon scheduler
        prices ``horizon_steps`` instants per replan, and planned
        execution re-runs the whole matcher over each plan horizon -- a
        2.5k-satellite horizon cell costs hundreds of times a same-size
        live cell, which uniform per-step costing shards unfairly.
        """
        from repro.simulation.config import SimulationConfig

        spec = self.spec
        if spec.kind == "baseline":
            stations = spec.station_count
        else:
            stations = max(1, round(spec.num_stations * spec.station_fraction))
        steps = max(1, int(spec.duration_s // spec.step_s))
        graphs = float(steps)
        if spec.scheduler == "horizon" and spec.horizon_steps > 1:
            # HorizonScheduler re-prices horizon_steps instants every
            # replan_steps (= max(1, horizon_steps // 2)) steps.
            replan = max(1, spec.horizon_steps // 2)
            graphs += steps * (spec.horizon_steps / replan)
        if spec.execution_mode == "planned":
            # Each plan refresh rolls the matcher over the plan horizon.
            refreshes = max(1.0, spec.duration_s / SimulationConfig.plan_refresh_s)
            graphs += refreshes * (SimulationConfig.plan_horizon_s / spec.step_s)
        if spec.scheduler == "beamforming" and spec.beams > 1:
            graphs *= spec.beams
        return float(spec.num_satellites) * stations * graphs


def _export_shared_ephemeris(
    cells: list[SweepCell],
) -> tuple[dict[str, tuple], list]:
    """Build each pending fleet's ephemeris once; publish via shared memory.

    Groups cells by :meth:`ScenarioSpec.fleet_identity` so orbit-identical
    fleets share one propagation, sizes each table to the longest horizon
    any sharing cell needs (a longer table serves every shorter request),
    and returns ``(handles, blocks)``: the picklable descriptors workers
    attach, and the owning ``SharedMemory`` blocks the parent must close
    and unlink after the pool finishes.  Streaming cells
    (``ephemeris_window_steps > 0``) opt out -- their point is *not*
    materializing the table.
    """
    from repro.core.scenarios import PAPER_EPOCH
    from repro.orbits.ephemeris import (
        _key_digest,
        _table_key,
        export_shared_table,
    )
    from repro.simulation.config import SimulationConfig

    fleets: dict[tuple, list] = {}
    wanted: dict[str, list] = {}
    for cell in cells:
        spec = cell.spec
        if spec.ephemeris_window_steps > 0:
            continue
        steps = max(1, int(spec.duration_s // spec.step_s))
        if spec.execution_mode == "planned":
            steps += int(SimulationConfig.plan_horizon_s // spec.step_s) + 1
        fleet = fleets.get(spec.fleet_identity())
        if fleet is None:
            fleet = spec.build_fleet()
            fleets[spec.fleet_identity()] = fleet
        key = _table_key(
            fleet, PAPER_EPOCH, spec.step_s, spec.ephemeris_dtype
        )
        digest = _key_digest(key)
        entry = wanted.get(digest)
        if entry is None or steps > entry[2]:
            wanted[digest] = [
                fleet, PAPER_EPOCH, steps, spec.step_s,
                spec.ephemeris_dtype,
            ]
    handles: dict[str, tuple] = {}
    blocks: list = []
    for fleet, start, steps, step_s, dtype in wanted.values():
        digest, handle, shm = export_shared_table(
            fleet, start, steps, step_s, dtype=dtype
        )
        handles[digest] = handle
        blocks.append(shm)
    return handles, blocks


def shard_cells(cells: list[SweepCell],
                workers: int) -> list[list[SweepCell]]:
    """Partition cells across ``workers`` shards, deterministically.

    Longest-processing-time-first over :meth:`SweepCell.cost_estimate`:
    cells are placed heaviest-first onto the currently lightest shard
    (ties: lowest shard index), so one expensive fig3 variant cannot pile
    onto the same worker as another.  Hash-ordered tie-breaking makes the
    assignment a pure function of the grid.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    order = sorted(
        cells, key=lambda c: (-c.cost_estimate(), c.config_sha256())
    )
    shards: list[list[SweepCell]] = [[] for _ in range(workers)]
    loads = [0.0] * workers
    for cell in order:
        lightest = min(range(workers), key=lambda i: (loads[i], i))
        shards[lightest].append(cell)
        loads[lightest] += cell.cost_estimate()
    return [shard for shard in shards if shard]


def checkpoint_path(run_dir: str, config_sha256: str) -> str:
    return os.path.join(run_dir, CELLS_SUBDIR, f"{config_sha256}.json")


def write_checkpoint(run_dir: str, entry: dict) -> str:
    """Atomically persist one finished cell (tmp file + rename)."""
    path = checkpoint_path(run_dir, entry["cell"]["config_sha256"])
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, sort_keys=True, indent=2)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_checkpoint(run_dir: str, cell: SweepCell) -> dict | None:
    """A previously finished cell's entry, or None when absent/stale.

    A checkpoint only counts when its stored spec matches the grid's --
    a run directory reused across edited grids must re-run edited cells,
    never serve a stale report for them.
    """
    path = checkpoint_path(run_dir, cell.config_sha256())
    try:
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    payload = entry.get("cell", {})
    if payload.get("schema") != CELL_SCHEMA:
        return None
    if payload.get("config_sha256") != cell.config_sha256():
        return None
    if payload.get("spec") != cell.spec.to_dict():
        return None
    return entry


def merge_cells(entries: list[dict]) -> dict:
    """The deterministic ``repro-sweep/1`` report from finished cells."""
    payloads = sorted(
        (entry["cell"] for entry in entries),
        key=lambda payload: payload["config_sha256"],
    )
    return {
        "schema": SWEEP_SCHEMA,
        "cell_count": len(payloads),
        "cells": payloads,
    }


def sweep_report_json(merged: dict) -> str:
    """Canonical serialized form (the byte-identity contract)."""
    return json.dumps(merged, sort_keys=True, indent=2) + "\n"


@dataclass
class SweepResult:
    """A finished sweep: the merged report plus its runtime manifest."""

    merged: dict
    manifest: dict
    completed: int
    skipped: int
    report_path: str | None = None
    manifest_path: str | None = None

    def to_json(self) -> str:
        return sweep_report_json(self.merged)

    def payloads_by_label(self) -> dict[str, dict]:
        return {cell["label"]: cell for cell in self.merged["cells"]}


class SweepRunner:
    """Execute a grid of scenario specs, optionally across processes.

    ``workers=0`` runs every cell in this process (the serial reference
    path -- no pool, shared in-process caches); ``workers>=1`` shards the
    grid across that many worker processes.  Either way the merged report
    bytes are identical, because cells are independent, seeded, and the
    merge order is the config-hash order, not the execution order.

    ``run_dir`` enables checkpointing (and is required for ``resume`` and
    for per-worker traces); ``sweep_seed`` re-derives every cell's RNG
    seeds from the sweep seed (grids that vary only non-seed knobs then
    share identical derived seeds per cell identity).
    """

    def __init__(self, cells: list[SweepCell], *, run_dir: str | None = None,
                 workers: int = 0, sweep_seed: int | None = None,
                 trace: bool = False, share_ephemeris: bool = False):
        if sweep_seed is not None:
            cells = [
                replace(cell, spec=cell.spec.derive_seeds(sweep_seed))
                for cell in cells
            ]
        if not cells:
            raise ValueError("sweep grid is empty")
        labels = [cell.label for cell in cells]
        if len(set(labels)) != len(labels):
            dupes = sorted({lab for lab in labels if labels.count(lab) > 1})
            raise ValueError(f"duplicate cell labels in grid: {dupes}")
        by_hash: dict[str, str] = {}
        for cell in cells:
            digest = cell.config_sha256()
            if digest in by_hash:
                raise ValueError(
                    f"duplicate spec in grid: cells {by_hash[digest]!r} and "
                    f"{cell.label!r} hash to {digest[:12]}"
                )
            by_hash[digest] = cell.label
        if trace and run_dir is None:
            raise ValueError("per-worker traces require a run_dir")
        self.cells = list(cells)
        self.run_dir = run_dir
        self.workers = int(workers)
        self.trace = trace
        #: Publish each pending fleet's ephemeris once, in POSIX shared
        #: memory, before launching the pool -- workers map the parent's
        #: table instead of propagating per process.  Parallel runs only
        #: (the serial path already shares via the in-process cache).
        self.share_ephemeris = share_ephemeris

    # -- execution ----------------------------------------------------------

    def run(self, resume: bool = False) -> SweepResult:
        """Run (or finish) the grid and merge the per-cell reports."""
        from repro.runners.worker import run_shard

        if resume and self.run_dir is None:
            raise ValueError("resume requires a run_dir")
        done: list[dict] = []
        pending: list[SweepCell] = []
        if resume:
            for cell in self.cells:
                entry = load_checkpoint(self.run_dir, cell)
                if entry is not None:
                    entry.setdefault("runtime", {})["resumed"] = True
                    done.append(entry)
                else:
                    pending.append(cell)
        else:
            pending = list(self.cells)
        trace_dir = (
            os.path.join(self.run_dir, TRACES_SUBDIR) if self.trace else None
        )
        shard_hashes: list[list[str]] = []
        if pending and self.workers >= 1:
            shm_handles: dict[str, tuple] = {}
            shm_blocks: list = []
            if self.share_ephemeris:
                shm_handles, shm_blocks = _export_shared_ephemeris(pending)
            shards = shard_cells(pending, self.workers)
            shard_hashes = [
                [cell.config_sha256() for cell in shard] for shard in shards
            ]
            shard_args = [
                (
                    index,
                    [(cell.label, cell.spec.to_dict()) for cell in shard],
                    self.run_dir,
                    trace_dir,
                    shm_handles,
                )
                for index, shard in enumerate(shards)
            ]
            try:
                with ProcessPoolExecutor(max_workers=len(shards)) as pool:
                    for entries in pool.map(run_shard, shard_args):
                        done.extend(entries)
            finally:
                for shm in shm_blocks:
                    try:
                        shm.close()
                        shm.unlink()
                    except (FileNotFoundError, OSError):
                        pass
        elif pending:
            # Serial reference path: one in-process "shard" in merge order.
            ordered = sorted(pending, key=lambda c: c.config_sha256())
            shard_hashes = [[cell.config_sha256() for cell in ordered]]
            done.extend(run_shard((
                0,
                [(cell.label, cell.spec.to_dict()) for cell in ordered],
                self.run_dir,
                trace_dir,
            )))
        merged = merge_cells(done)
        skipped = len(self.cells) - len(pending)
        manifest = self._build_manifest(done, shard_hashes, skipped)
        result = SweepResult(
            merged=merged, manifest=manifest,
            completed=len(pending), skipped=skipped,
        )
        if self.run_dir is not None:
            os.makedirs(self.run_dir, exist_ok=True)
            result.report_path = os.path.join(self.run_dir, REPORT_FILENAME)
            with open(result.report_path, "w", encoding="utf-8") as handle:
                handle.write(result.to_json())
            result.manifest_path = os.path.join(
                self.run_dir, MANIFEST_FILENAME
            )
            with open(result.manifest_path, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, sort_keys=True, indent=2)
                handle.write("\n")
        return result

    def _build_manifest(self, entries: list[dict],
                        shard_hashes: list[list[str]],
                        skipped: int) -> dict:
        """The runtime side: who ran what, where, and for how long."""
        cells = {}
        for entry in entries:
            payload, runtime = entry["cell"], entry.get("runtime", {})
            cells[payload["config_sha256"]] = {
                "label": payload["label"],
                "shard": runtime.get("shard"),
                "wall_s": runtime.get("wall_s"),
                "resumed": runtime.get("resumed", False),
                "cost_estimate": SweepCell(
                    payload["label"],
                    ScenarioSpec.from_dict(payload["spec"]),
                ).cost_estimate(),
            }
        return build_manifest(extra={
            "schema": SWEEP_MANIFEST_SCHEMA,
            "workers": self.workers,
            "cell_count": len(self.cells),
            "completed_cells": len(self.cells) - skipped,
            "resumed_cells": skipped,
            "shard_assignment": shard_hashes,
            "traced": self.trace,
            "cells": cells,
        })


def run_specs(cells: list[SweepCell], *, workers: int = 0,
              run_dir: str | None = None,
              resume: bool = False) -> dict[str, dict]:
    """Run a grid and return ``label -> cell payload`` (experiments' view).

    The payload is the deterministic half of a checkpoint: spec, seeds,
    population sizes, and the full serialized
    :class:`~repro.simulation.metrics.SimulationReport` under ``report``.
    """
    runner = SweepRunner(cells, run_dir=run_dir, workers=workers)
    result = runner.run(resume=resume)
    return result.payloads_by_label()
