"""Worker-side cell execution (top-level functions, so pools can pickle).

A shard is one worker's slice of the grid.  The worker rebuilds each
frozen spec from its dict, runs it, strips the wall-clock half of the
result into the ``runtime`` sidecar (keeping the ``cell`` payload
deterministic), and checkpoints the entry before moving on -- so a kill
mid-shard loses at most the cell in flight.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

from repro.core.scenarios import ScenarioSpec
from repro.simulation.metrics import SimulationReport


def run_cell(label: str, spec: ScenarioSpec,
             trace_dir: str | None = None) -> tuple[dict, dict]:
    """Run one cell; return its (deterministic payload, runtime sidecar)."""
    from repro.runners.sweep import CELL_SCHEMA

    digest = spec.config_sha256()
    observed_spec = spec
    if trace_dir is not None:
        from repro.obs import ObsConfig

        os.makedirs(trace_dir, exist_ok=True)
        observed_spec = replace(spec, observability=ObsConfig(
            trace_path=os.path.join(trace_dir, f"{digest}.jsonl"),
            manifest_extra={"sweep_label": label,
                            "sweep_cell": digest},
        ))
    started = time.perf_counter()
    result = observed_spec.build().run(label=label)
    wall_s = time.perf_counter() - started
    report_dict = result.report.to_dict()
    # Stage timings are wall-clock facts: they belong to the runtime
    # sidecar (and the sweep manifest), never the deterministic payload.
    stage_timings = report_dict.pop("stage_timings", {})
    report_dict["stage_timings"] = {}
    payload = {
        "schema": CELL_SCHEMA,
        "label": label,
        "config_sha256": digest,
        "spec": spec.to_dict(),
        "seeds": spec.seeds(),
        "num_satellites": result.num_satellites,
        "num_stations": result.num_stations,
        "report": report_dict,
    }
    runtime = {"wall_s": wall_s, "stage_timings": stage_timings}
    return payload, runtime


def run_shard(args: tuple) -> list[dict]:
    """Run one shard: ``(index, [(label, spec_dict)], run_dir, trace_dir)``
    with an optional fifth element of shared-memory ephemeris handles.

    Returns the finished entries; when ``run_dir`` is set each entry is
    also checkpointed as it completes.  Registered ephemeris handles make
    every cell map the parent's one table instead of propagating locally
    (``ephemeris_cache/shm_hit`` instead of ``build`` in the counters).
    """
    from repro.runners.sweep import write_checkpoint

    shard_index, cell_dicts, run_dir, trace_dir, *rest = args
    if rest and rest[0]:
        from repro.orbits.ephemeris import attach_shared_tables

        attach_shared_tables(rest[0])
    entries: list[dict] = []
    for label, spec_dict in cell_dicts:
        spec = ScenarioSpec.from_dict(spec_dict)
        payload, runtime = run_cell(label, spec, trace_dir=trace_dir)
        runtime["shard"] = shard_index
        entry = {"cell": payload, "runtime": runtime}
        if run_dir is not None:
            write_checkpoint(run_dir, entry)
        entries.append(entry)
    return entries


def report_from_payload(payload: dict) -> SimulationReport:
    """The cell's :class:`SimulationReport`, rebuilt from its payload."""
    return SimulationReport.from_dict(payload["report"])
