"""Parallel, resumable sweep execution over frozen scenario specs.

The runner layer turns a grid of :class:`~repro.core.scenarios.ScenarioSpec`
cells into one merged, schema-versioned ``repro-sweep/1`` report:

* :class:`SweepRunner` -- shard across N processes (deterministic LPT
  assignment), checkpoint per cell under its config hash, resume a killed
  sweep, merge byte-identically regardless of execution mode;
* :func:`run_specs` -- the experiments' one-call view (label -> payload);
* :mod:`repro.runners.grids` -- the paper's named grids (``fig3``,
  ``fig3-seeds``, ``ablations``, ``fault-sweep``) plus JSON grid files.
"""

from repro.runners.sweep import (
    CELL_SCHEMA,
    SWEEP_MANIFEST_SCHEMA,
    SWEEP_SCHEMA,
    SweepCell,
    SweepResult,
    SweepRunner,
    merge_cells,
    run_specs,
    shard_cells,
    sweep_report_json,
)
from repro.runners.worker import report_from_payload, run_cell

__all__ = [
    "CELL_SCHEMA",
    "SWEEP_MANIFEST_SCHEMA",
    "SWEEP_SCHEMA",
    "SweepCell",
    "SweepResult",
    "SweepRunner",
    "merge_cells",
    "report_from_payload",
    "run_cell",
    "run_specs",
    "shard_cells",
    "sweep_report_json",
]
