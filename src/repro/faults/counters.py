"""Per-fault counters the engine reports next to the delivery metrics.

Counting happens at the engine step level -- not inside the contact-graph
kernels -- so the totals are identical whether the scalar or batched
scheduling path ran (the kernels only ever see availability *weights*).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class FaultCounters:
    """How often each fault class actually bit during a run."""

    #: Executed assignments wasted on a hard-down station (unannounced
    #: outage, or an announced one the availability prior gambled on).
    station_outage_steps: int = 0
    #: Executed assignments throttled by a partial outage.
    partial_outage_steps: int = 0
    #: Transmission steps lost to a ground-side decode fault.
    undecoded_steps: int = 0
    #: Transmission steps lost to stale orbital elements.
    stale_tle_steps: int = 0
    #: Chunk receipts swallowed by a backhaul partition.
    receipts_dropped: int = 0
    #: Chunk receipts that arrived late through a backhaul latency spike.
    receipts_delayed: int = 0
    #: Tx-capable contacts where a partition blocked the plan upload and
    #: the ack batch (the satellite leaves with stale state).
    ack_batches_missed: int = 0
    #: Chunks the ground decoded a second time because the first receipt
    #: never reached the backend; counted once per redelivery.
    redelivered_chunks: int = 0

    def as_dict(self) -> dict[str, int]:
        """Field-order-stable dict for reports and JSON serialization."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def total_events(self) -> int:
        return sum(self.as_dict().values())
