"""The fault schedule: every injected fault for one run, plus queries.

A :class:`FaultSchedule` is pure data -- the engine and scheduler query
it point-in-time and never mutate it, so one schedule can be replayed
across experiment variants.  :meth:`FaultSchedule.generate` draws a full
schedule from a single seeded RNG; the same (entities, horizon,
intensity, seed) always produces the identical schedule, which is what
makes fault runs bit-reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Sequence

from repro.faults.events import (
    BackhaulFault,
    StaleTleWindow,
    StationOutage,
    UndecodedPass,
)

#: How the generator splits the requested intensity across fault classes.
#: Outages dominate (station churn is the GSaaS norm); backhaul and
#: decode faults share the rest; stale TLEs are per-satellite on top.
_OUTAGE_SHARE = 0.4
_BACKHAUL_SHARE = 0.3
_UNDECODED_SHARE = 0.3
_STALE_TLE_SHARE = 0.3


@dataclass
class FaultSchedule:
    """Every fault injected into one simulation run."""

    outages: list[StationOutage] = field(default_factory=list)
    backhaul: list[BackhaulFault] = field(default_factory=list)
    undecoded: list[UndecodedPass] = field(default_factory=list)
    stale_tle: list[StaleTleWindow] = field(default_factory=list)

    # -- queries (all half-open [start, end)) --------------------------------

    @property
    def event_count(self) -> int:
        return (len(self.outages) + len(self.backhaul)
                + len(self.undecoded) + len(self.stale_tle))

    def station_availability(self, station_id: str, when: datetime) -> float:
        """Usable capacity fraction in [0, 1]; 1.0 = healthy, 0.0 = dark.

        Overlapping outages compound pessimistically: the worst one wins.
        """
        worst = 1.0
        for o in self.outages:
            if o.station_id == station_id and o.covers(when):
                worst = min(worst, o.availability)
        return worst

    def backhaul_fault(self, station_id: str,
                       when: datetime) -> BackhaulFault | None:
        """The active backhaul fault, partition winning over latency spikes."""
        active = None
        for b in self.backhaul:
            if b.station_id == station_id and b.covers(when):
                if b.partitioned:
                    return b
                if active is None:
                    active = b
        return active

    def is_partitioned(self, station_id: str, when: datetime) -> bool:
        fault = self.backhaul_fault(station_id, when)
        return fault is not None and fault.partitioned

    def is_undecoded(self, station_id: str, when: datetime) -> bool:
        return any(
            u.station_id == station_id and u.covers(when)
            for u in self.undecoded
        )

    def is_tle_stale(self, satellite_id: str, when: datetime) -> bool:
        return any(
            w.satellite_id == satellite_id and w.covers(when)
            for w in self.stale_tle
        )

    def faulted_stations(self, when: datetime) -> set[str]:
        """Stations with any active fault (outage, backhaul, or decode)."""
        down = {o.station_id for o in self.outages if o.covers(when)}
        down |= {b.station_id for b in self.backhaul if b.covers(when)}
        down |= {u.station_id for u in self.undecoded if u.covers(when)}
        return down

    # -- generation ----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        station_ids: Sequence[str],
        satellite_ids: Sequence[str],
        start: datetime,
        horizon_s: float,
        *,
        intensity: float = 0.25,
        seed: int = 0,
        mean_outage_s: float = 3600.0,
        mean_backhaul_s: float = 1800.0,
        mean_undecoded_s: float = 900.0,
        mean_stale_tle_s: float = 7200.0,
    ) -> "FaultSchedule":
        """Draw a full fault schedule from one seeded RNG.

        ``intensity`` in [0, 1] is, per fault class, roughly the expected
        fraction of entity-time spent faulted (scaled by the class share
        constants above); 0 yields an empty schedule.  Identical inputs
        produce the identical schedule -- the RNG is consumed in a fixed
        entity-by-entity, class-by-class order.
        """
        if not 0.0 <= intensity <= 1.0:
            raise ValueError("intensity must be in [0, 1]")
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        schedule = cls()
        if intensity == 0.0:
            return schedule
        rng = random.Random(seed)

        def windows(share: float, mean_s: float):
            """Poisson arrivals with exponential durations, clamped to
            the horizon; expected covered fraction ~= intensity * share."""
            fraction = min(intensity * share, 0.95)
            if fraction <= 0.0:
                return
            mtbf = mean_s * (1.0 - fraction) / fraction
            clock = 0.0
            while True:
                clock += rng.expovariate(1.0 / mtbf)
                if clock >= horizon_s:
                    return
                duration = rng.expovariate(1.0 / mean_s)
                begin = start + timedelta(seconds=clock)
                finish = start + timedelta(
                    seconds=min(clock + duration, horizon_s)
                )
                if finish > begin:
                    yield begin, finish
                clock += duration

        for sid in station_ids:
            for begin, finish in windows(_OUTAGE_SHARE, mean_outage_s):
                if rng.random() < 0.6:
                    severity = 1.0  # hard down
                else:
                    severity = rng.uniform(0.3, 0.9)  # partial capacity
                schedule.outages.append(
                    StationOutage(sid, begin, finish, severity=severity)
                )
            for begin, finish in windows(_BACKHAUL_SHARE, mean_backhaul_s):
                if rng.random() < 0.5:
                    schedule.backhaul.append(
                        BackhaulFault(sid, begin, finish, partitioned=True)
                    )
                else:
                    spike_s = 60.0 + rng.expovariate(1.0 / 600.0)
                    schedule.backhaul.append(
                        BackhaulFault(sid, begin, finish,
                                      extra_latency_s=spike_s)
                    )
            for begin, finish in windows(_UNDECODED_SHARE, mean_undecoded_s):
                schedule.undecoded.append(UndecodedPass(sid, begin, finish))
        for sat_id in satellite_ids:
            for begin, finish in windows(_STALE_TLE_SHARE, mean_stale_tle_s):
                schedule.stale_tle.append(
                    StaleTleWindow(sat_id, begin, finish)
                )
        return schedule

    @classmethod
    def station_blackout(cls, station_ids: Sequence[str], start: datetime,
                         duration_s: float) -> "FaultSchedule":
        """Every listed station hard-down for one interval (scenario helper)."""
        end = start + timedelta(seconds=duration_s)
        return cls(outages=[
            StationOutage(sid, start, end, severity=1.0)
            for sid in station_ids
        ])
