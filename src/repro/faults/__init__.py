"""Deterministic fault injection for the downlink pipeline.

The subsystem is pure opt-in: with ``faults=None`` (the default
everywhere) the engine, scheduler, and kernels behave bit-identically to
a build without this package.  A seeded :class:`FaultSchedule` injects
station outages (full and partial), backhaul latency spikes and
partitions, ground-side decode failures, and stale-TLE windows; the
engine degrades gracefully and reports :class:`FaultCounters` alongside
the delivery metrics.
"""

from repro.faults.counters import FaultCounters
from repro.faults.events import (
    BackhaulFault,
    StaleTleWindow,
    StationOutage,
    UndecodedPass,
)
from repro.faults.schedule import FaultSchedule

__all__ = [
    "BackhaulFault",
    "FaultCounters",
    "FaultSchedule",
    "StaleTleWindow",
    "StationOutage",
    "UndecodedPass",
]
