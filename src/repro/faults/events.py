"""Fault event types: the vocabulary of things that go wrong.

Each event is a time window attached to one entity (a station or a
satellite).  The engine and scheduler never mutate events; the
:class:`~repro.faults.schedule.FaultSchedule` owns the collections and
answers point-in-time queries.

All windows are half-open ``[start, end)``, matching the legacy
:class:`~repro.simulation.faults.Outage` convention, so back-to-back
windows never double-cover an instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime


def _check_window(start: datetime, end: datetime) -> None:
    if end <= start:
        raise ValueError("fault window must end after it starts")


class _WindowMixin:
    """Shared point-in-time behavior for fault windows."""

    start: datetime
    end: datetime

    def covers(self, when: datetime) -> bool:
        return self.start <= when < self.end

    @property
    def duration_s(self) -> float:
        return (self.end - self.start).total_seconds()


@dataclass(frozen=True)
class StationOutage(_WindowMixin):
    """A station down (fully or partially) for one interval.

    ``severity`` is the capacity fraction lost: 1.0 is hard down (no RF,
    no edges), 0.5 models e.g. one of two dishes offline or a degraded
    LNA -- the pass still happens at half the planned throughput.
    """

    station_id: str
    start: datetime
    end: datetime
    severity: float = 1.0

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if not 0.0 < self.severity <= 1.0:
            raise ValueError("severity must be in (0, 1]")

    @property
    def availability(self) -> float:
        """Usable capacity fraction while the outage covers an instant."""
        return 1.0 - self.severity


@dataclass(frozen=True)
class BackhaulFault(_WindowMixin):
    """A station's Internet backhaul misbehaving for one interval.

    ``partitioned=True`` severs the station from the backend entirely:
    chunk receipts posted during the window are lost, and a tx-capable
    contact during the window can upload neither a fresh plan nor the
    collated ack batch.  Otherwise the fault is a latency spike: receipts
    still arrive, ``extra_latency_s`` late.
    """

    station_id: str
    start: datetime
    end: datetime
    extra_latency_s: float = 0.0
    partitioned: bool = False

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if self.extra_latency_s < 0:
            raise ValueError("extra latency cannot be negative")
        if not self.partitioned and self.extra_latency_s <= 0:
            raise ValueError(
                "a backhaul fault must partition or add latency"
            )


@dataclass(frozen=True)
class UndecodedPass(_WindowMixin):
    """Ground-side decode failure at one station (RFI, SDR crash, ...).

    The satellite transmits per plan and cannot tell; every bit sent to
    the station during the window is lost and recovered only by the
    ack-timeout requeue path.
    """

    station_id: str
    start: datetime
    end: datetime

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class StaleTleWindow(_WindowMixin):
    """A satellite operating on stale orbital elements.

    Stale TLEs degrade pointing on both ends enough that transmissions
    fail to decode (the scheduler's geometry still uses its own
    propagation -- the error is in the executed pass, not the plan).
    """

    satellite_id: str
    start: datetime
    end: datetime

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
