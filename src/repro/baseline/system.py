"""The state-of-the-art centralized baseline the paper compares against.

From Sec. 4: "This method uses 6 parallel channels as well as high-end
receivers with 4 m diameter dish antennas.  As in [10], we model 5 such
high-end ground stations across the planet.  Each baseline ground station
achieves 10x the median throughput achieved by a DGS node."

The baseline is *not* a different algorithm -- it runs the same scheduler
over a different (tiny, polar, high-end, all-uplink-capable) network.
This module packages that network plus helpers to verify the 10x
throughput relationship emerges from the physics rather than being
hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.groundstations.network import (
    GroundStationNetwork,
    baseline_polar_network,
)
from repro.linkbudget.budget import (
    LinkBudget,
    RadioConfig,
    baseline_receiver,
    dgs_node_receiver,
)


@dataclass
class CentralizedBaseline:
    """The 5-station high-end baseline system."""

    station_count: int = 5
    min_elevation_deg: float = 5.0

    def network(self) -> GroundStationNetwork:
        """Build the baseline station network (all transmit-capable)."""
        return baseline_polar_network(
            count=self.station_count,
            min_elevation_deg=self.min_elevation_deg,
        )


def measured_node_throughput_ratio(
    radio: RadioConfig | None = None,
    samples: int = 200,
    seed: int = 0,
) -> float:
    """Median baseline-station / DGS-node throughput ratio over pass geometry.

    Draws slant-range/elevation pairs from the LEO pass distribution and
    compares the DVB-S2 rates a 4 m 6-channel baseline receiver and a 1 m
    single-channel DGS node achieve on the identical geometry.  The paper
    asserts this ratio is 10x; the test suite checks our physics lands in
    that neighbourhood.
    """
    import math
    import random

    rng = random.Random(seed)
    radio = radio or RadioConfig()
    base = LinkBudget(radio, baseline_receiver())
    node = LinkBudget(radio, dgs_node_receiver())
    base_rates = []
    node_rates = []
    for _ in range(samples):
        # Elevation from the geometric pass distribution; slant range from
        # a 500 km circular orbit at that elevation.
        u = rng.random()
        el = min(90.0, max(5.0, 90.0 * (1.0 - u) ** 2.2 + 5.0))
        re, alt = 6371.0, 500.0
        el_rad = math.radians(el)
        rng_km = (
            -re * math.sin(el_rad)
            + math.sqrt((re * math.sin(el_rad)) ** 2 + alt * (alt + 2 * re))
        )
        base_rates.append(base.evaluate(rng_km, el, 60.0).bitrate_bps)
        node_rates.append(node.evaluate(rng_km, el, 45.0).bitrate_bps)
    node_median = float(np.median(node_rates))
    if node_median == 0.0:
        return float("inf")
    return float(np.median(base_rates)) / node_median
