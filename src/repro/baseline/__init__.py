"""The centralized baseline system (paper Sec. 4, "Baseline")."""

from repro.baseline.system import CentralizedBaseline, measured_node_throughput_ratio

__all__ = ["CentralizedBaseline", "measured_node_throughput_ratio"]
