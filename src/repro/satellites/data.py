"""Imagery data chunks and their downlink lifecycle.

A chunk is the unit of capture and of latency accounting: latency is
"time elapsed between data capture and data reception at the ground
station" (Sec. 4).  Chunks are byte-divisible on the air -- a pass can end
mid-chunk and the remainder goes later, possibly to a different station --
but a chunk is *received* (for latency purposes) when its last byte lands.

Lifecycle::

    ONBOARD -> (all bytes received somewhere) -> DELIVERED
            -> (ack relayed via a tx-capable contact) -> ACKED (freed)

In the centralized baseline every station can ack immediately, so
DELIVERED and ACKED coincide.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from datetime import datetime


class ChunkState(enum.Enum):
    ONBOARD = "onboard"
    DELIVERED = "delivered"  # fully received on the ground, not yet acked
    ACKED = "acked"  # safe to free onboard storage


_chunk_counter = itertools.count()


class ChunkIdAllocator:
    """Fleet-wide chunk-id source owned by one simulation.

    The module-global counter only hands out process-unique ids, so two
    back-to-back in-process runs of the same scenario number their chunks
    differently (and their reports diverge).  The engine creates one
    allocator per run -- starting above any id already present in the
    fleet's storages, so data generated before the simulation existed
    cannot collide -- and every satellite draws from it, which keeps ids
    fleet-unique (the engine's delivered-chunk dedup set requires that)
    and makes chunk numbering a pure function of the scenario.
    """

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError("chunk id start cannot be negative")
        self._counter = itertools.count(start)

    def next_id(self) -> int:
        return next(self._counter)


@dataclass
class DataChunk:
    """One unit of captured imagery."""

    satellite_id: str
    size_bits: float
    capture_time: datetime
    priority: float = 0.0  # operator-assigned boost (SLA tiers, disasters)
    region: str = ""  # geographic tag for geography-aware value functions
    chunk_id: int = field(default_factory=lambda: next(_chunk_counter))
    #: Owning tenant ("" = the legacy single-tenant stream) and the SLA
    #: delivery deadline stamped at capture by the demand layer.
    tenant_id: str = ""
    deadline: datetime | None = None
    state: ChunkState = ChunkState.ONBOARD
    remaining_bits: float = field(default=-1.0)
    delivery_time: datetime | None = None
    ack_time: datetime | None = None
    #: False when the satellite transmitted the chunk but the ground failed
    #: to decode it (rate over-prediction in the ack-free design).  The
    #: satellite cannot know this until acks go missing; the simulation
    #: engine tracks the truth.
    ground_received: bool = True
    retransmissions: int = 0

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ValueError(f"chunk size must be positive, got {self.size_bits}")
        if self.remaining_bits < 0:
            self.remaining_bits = self.size_bits

    @property
    def sent_bits(self) -> float:
        return self.size_bits - self.remaining_bits

    @property
    def is_fully_sent(self) -> bool:
        return self.remaining_bits <= 0.0

    def transmit(self, bits: float, now: datetime, decoded: bool = True) -> float:
        """Drain up to ``bits`` from the chunk; returns bits actually sent.

        Marks the chunk DELIVERED (recording ``now``) when the final bit
        goes out.  ``decoded=False`` records that the ground failed to
        decode this transmission (the satellite does not know).
        """
        if bits < 0:
            raise ValueError("cannot transmit negative bits")
        if self.state is not ChunkState.ONBOARD:
            return 0.0
        sent = min(bits, self.remaining_bits)
        self.remaining_bits -= sent
        if not decoded:
            self.ground_received = False
        if self.is_fully_sent:
            self.state = ChunkState.DELIVERED
            self.delivery_time = now
        return sent

    def requeue(self) -> None:
        """Return a sent-but-lost chunk to the onboard queue for retransmit."""
        if self.state is not ChunkState.DELIVERED:
            raise ValueError(
                f"chunk {self.chunk_id} cannot requeue from state {self.state}"
            )
        self.state = ChunkState.ONBOARD
        self.remaining_bits = self.size_bits
        self.delivery_time = None
        self.ground_received = True
        self.retransmissions += 1

    def acknowledge(self, now: datetime) -> None:
        """Mark the chunk ACKED; only valid after full delivery."""
        if self.state is not ChunkState.DELIVERED:
            raise ValueError(
                f"chunk {self.chunk_id} cannot be acked from state {self.state}"
            )
        self.state = ChunkState.ACKED
        self.ack_time = now

    def latency_seconds(self) -> float | None:
        """Capture-to-delivery latency, or None while onboard."""
        if self.delivery_time is None:
            return None
        return (self.delivery_time - self.capture_time).total_seconds()
