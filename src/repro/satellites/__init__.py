"""Satellite-side models: imagery data, onboard storage, the spacecraft.

Earth-observation satellites in the paper generate 100 GB/day of imagery
(Sec. 4), keep it in an onboard priority queue ordered by the value
function, downlink it per the uploaded plan, and -- because most DGS
stations cannot ack -- retain delivered data until a transmit-capable
contact relays the collated acknowledgements (Sec. 3.3, "Ack-free
Downlink").
"""

from repro.satellites.data import ChunkState, DataChunk
from repro.satellites.power import PowerModel
from repro.satellites.storage import OnboardStorage
from repro.satellites.satellite import Satellite

__all__ = ["DataChunk", "ChunkState", "OnboardStorage", "Satellite", "PowerModel"]
