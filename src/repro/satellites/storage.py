"""Onboard storage: the satellite's priority queue of unsent data.

"The satellite maintains a priority queue and sends the data in the
highest priority first order" (Sec. 3.2).  The queue order is pluggable --
the scheduler's value function decides what "highest priority" means --
but defaults to oldest-first, which is both the latency-optimal order and
the natural camera-roll order.

Storage also tracks the delivered-but-unacked set: with receive-only
stations a satellite "can discard data only when it has ... received an
acknowledgement" (Sec. 3.3), so those bytes still occupy the recorder.
"""

from __future__ import annotations

from datetime import datetime
from typing import Callable, Iterable

from repro.satellites.data import ChunkState, DataChunk

#: Orders the send queue; smaller key = sent first.
QueueKey = Callable[[DataChunk], float]


def oldest_first(chunk: DataChunk) -> float:
    """Default order: capture time ascending (latency-optimal)."""
    return chunk.capture_time.timestamp()


def highest_priority_first(chunk: DataChunk) -> tuple[float, float]:
    """Operator priority descending, then oldest first."""
    return (-chunk.priority, chunk.capture_time.timestamp())


class OnboardStorage:
    """The spacecraft recorder.

    Parameters
    ----------
    capacity_bits:
        Recorder size; captures beyond it are dropped oldest-first and
        counted in :attr:`dropped_bits` (real recorders overwrite).
        ``None`` = unbounded (the paper's experiments never fill a modern
        recorder in a day).
    queue_key:
        Sort key for the send order.
    """

    def __init__(self, capacity_bits: float | None = None,
                 queue_key: QueueKey = oldest_first):
        if capacity_bits is not None and capacity_bits <= 0:
            raise ValueError("capacity must be positive or None")
        self.capacity_bits = capacity_bits
        self.queue_key = queue_key
        self._onboard: list[DataChunk] = []
        self._delivered_unacked: list[DataChunk] = []
        self._acked: list[DataChunk] = []
        self.dropped_bits = 0.0
        self._dirty = False
        #: Send-queue mutation counter.  Bumped by every operation that can
        #: change what :meth:`prefix_age_value` would return (capture,
        #: transmit, requeue); fleet-level pricing caches compare it to
        #: decide whether their snapshot of this queue is still valid.
        self.version = 0

    # -- capture -----------------------------------------------------------

    def capture(self, chunk: DataChunk) -> None:
        """Add a freshly captured chunk, evicting oldest data if full."""
        if chunk.state is not ChunkState.ONBOARD:
            raise ValueError("can only capture ONBOARD chunks")
        self._onboard.append(chunk)
        self._dirty = True
        self.version += 1
        if self.capacity_bits is not None:
            while self.stored_bits > self.capacity_bits and self._onboard:
                self._sort()
                victim = self._onboard.pop(0)
                self.dropped_bits += victim.remaining_bits

    # -- transmission ------------------------------------------------------

    def _sort(self) -> None:
        if self._dirty:
            self._onboard.sort(key=self.queue_key)
            self._dirty = False

    def peek_sendable(self) -> DataChunk | None:
        """The chunk that would be sent next, or None when empty."""
        self._sort()
        return self._onboard[0] if self._onboard else None

    def transmit(self, bits_budget: float, now: datetime,
                 decoded: bool = True) -> tuple[float, list[DataChunk]]:
        """Send up to ``bits_budget`` bits in priority order.

        Returns (bits actually sent, chunks that completed delivery now).
        ``decoded=False`` models a transmission the ground failed to
        decode: the satellite's bookkeeping is identical (it cannot know),
        but the chunks are flagged so the engine withholds receipts.
        """
        if bits_budget < 0:
            raise ValueError("bits budget cannot be negative")
        self._sort()
        self.version += 1
        sent_total = 0.0
        completed: list[DataChunk] = []
        while bits_budget > 1e-9 and self._onboard:
            chunk = self._onboard[0]
            sent = chunk.transmit(bits_budget, now, decoded)
            sent_total += sent
            bits_budget -= sent
            if chunk.is_fully_sent:
                self._onboard.pop(0)
                self._delivered_unacked.append(chunk)
                completed.append(chunk)
            else:
                break  # budget exhausted mid-chunk
        return sent_total, completed

    def requeue_stale_unacked(self, sent_before: datetime) -> list[DataChunk]:
        """Requeue delivered-unacked chunks sent at or before ``sent_before``.

        Called right after processing an ack batch at a transmit-capable
        contact: anything sent long enough ago that its ack should have
        arrived -- and did not -- is presumed lost and goes back in the
        send queue (the paper's "missing pieces ... communicated to the
        satellite during next contact").

        The boundary is **inclusive**: a chunk whose ack deadline lands
        exactly on the contact instant has had its full timeout window and
        is requeued *now* rather than surviving until an entire extra
        tx-capable contact.  This cannot race a timely ack -- the engine
        processes the contact's ack batch before calling this, so a chunk
        whose ack did arrive is already off the unacked list.
        """
        requeued = []
        remaining = []
        for chunk in self._delivered_unacked:
            if chunk.delivery_time is not None and chunk.delivery_time <= sent_before:
                chunk.requeue()
                self._onboard.append(chunk)
                self._dirty = True
                self.version += 1
                requeued.append(chunk)
            else:
                remaining.append(chunk)
        self._delivered_unacked = remaining
        return requeued

    # -- acknowledgements ----------------------------------------------------

    def acknowledge(self, chunk_ids: Iterable[int], now: datetime) -> int:
        """Free delivered chunks whose ids appear in ``chunk_ids``."""
        ids = set(chunk_ids)
        freed = 0
        remaining = []
        for chunk in self._delivered_unacked:
            if chunk.chunk_id in ids:
                chunk.acknowledge(now)
                self._acked.append(chunk)
                freed += 1
            else:
                remaining.append(chunk)
        self._delivered_unacked = remaining
        return freed

    # -- accounting ----------------------------------------------------------

    @property
    def backlog_bits(self) -> float:
        """Bits still to transmit (remaining portions of queued chunks).

        This is the send-budget view used by the value functions; for the
        delivery metric see :attr:`true_backlog_bits`.  Summation runs in
        send order (sorting first, a no-op when the queue is clean) so the
        float result is reproducible regardless of when the last capture
        or requeue happened relative to the read.
        """
        self._sort()
        return sum(c.remaining_bits for c in self._onboard)

    @property
    def undelivered_bits(self) -> float:
        """Full size of every chunk not yet completely received.

        A partially transmitted chunk counts whole: half an image is not a
        delivered image.  This is what makes generated == delivered +
        backlog hold exactly.
        """
        return sum(c.size_bits for c in self._onboard)

    @property
    def true_backlog_bits(self) -> float:
        """Ground-truth undelivered bits: the queue plus sent-but-lost chunks.

        The satellite believes lost chunks were delivered until acks go
        missing; the *true* backlog counts them as undelivered, which is
        what the paper's "data not downloaded" metric means.
        """
        lost = sum(
            c.size_bits for c in self._delivered_unacked if not c.ground_received
        )
        return self.undelivered_bits + lost

    @property
    def unacked_bits(self) -> float:
        """Bits delivered but awaiting acknowledgement (still on the recorder)."""
        return sum(c.size_bits for c in self._delivered_unacked)

    @property
    def stored_bits(self) -> float:
        """Recorder occupancy: undelivered remainder + unacked retention."""
        return self.backlog_bits + self.unacked_bits

    @property
    def onboard_chunks(self) -> list[DataChunk]:
        self._sort()
        return list(self._onboard)

    @property
    def delivered_unacked_chunks(self) -> list[DataChunk]:
        return list(self._delivered_unacked)

    @property
    def acked_chunks(self) -> list[DataChunk]:
        return list(self._acked)

    def all_chunks(self) -> list[DataChunk]:
        return self.onboard_chunks + self._delivered_unacked + self._acked

    def oldest_capture_time(self) -> datetime | None:
        """Capture time of the oldest unsent chunk (drives latency Phi)."""
        head = self.peek_sendable()
        return head.capture_time if head is not None else None

    def queue_snapshot(self) -> tuple[list[float], list[float], list[datetime], float, float]:
        """Sorted send-queue state for vectorized pricing.

        Returns ``(remaining_bits, size_bits, capture_times, backlog_bits,
        head_size_bits)`` in send order -- exactly the fields (and the
        iteration order) :meth:`prefix_age_value` consumes, so a batch
        evaluation over this snapshot reproduces its results bit for bit.
        Pair with :attr:`version` to know when the snapshot goes stale.
        """
        self._sort()
        remaining = [c.remaining_bits for c in self._onboard]
        sizes = [c.size_bits for c in self._onboard]
        captures = [c.capture_time for c in self._onboard]
        head_size = sizes[0] if sizes else 0.0
        return remaining, sizes, captures, sum(remaining), head_size

    def queue_demand_snapshot(self) -> tuple[list[str], list[datetime | None]]:
        """Tenant ids and SLA deadlines of the send queue, in send order.

        The demand companion to :meth:`queue_snapshot`: same sort, same
        positions, read together under the same :attr:`version`, so a
        fleet profile can extend its per-chunk arrays with tenant slots
        and deadlines without disturbing the legacy 5-tuple contract.
        """
        self._sort()
        tenant_ids = [c.tenant_id for c in self._onboard]
        deadlines = [c.deadline for c in self._onboard]
        return tenant_ids, deadlines

    def prefix_age_value(self, bits_budget: float, now: datetime) -> float:
        """Summed age (seconds, chunk-weighted) of the data a link could move.

        This is the paper's latency value function evaluated on the subset
        x that actually fits in a scheduling step: sum over the queue
        prefix of (chunk age) x (fraction of the chunk that fits).  A
        faster link moves more old chunks and therefore carries more
        value; a satellite with stale data outweighs a fresh one at equal
        rate.
        """
        if bits_budget <= 0.0:
            return 0.0
        self._sort()
        value = 0.0
        remaining_budget = bits_budget
        for chunk in self._onboard:
            if remaining_budget <= 0.0:
                break
            sendable = min(chunk.remaining_bits, remaining_budget)
            age_s = max(0.0, (now - chunk.capture_time).total_seconds())
            value += age_s * (sendable / chunk.size_bits)
            remaining_budget -= sendable
        return value
