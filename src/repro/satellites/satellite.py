"""The spacecraft model: orbit + radio + recorder + plan state.

A :class:`Satellite` binds together an orbit propagator (SGP4 over its
TLE), the downlink radio, the onboard storage, a continuous imagery
generator (100 GB/day in the paper's experiments), and -- for the hybrid
design -- the epoch of the last downlink plan it received from a
transmit-capable station.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import TYPE_CHECKING

import numpy as np

from repro.linkbudget.budget import RadioConfig
from repro.orbits.sgp4 import SGP4
from repro.orbits.tle import TLE
from repro.satellites.data import ChunkIdAllocator, DataChunk
from repro.satellites.power import PowerModel
from repro.satellites.storage import OnboardStorage

if TYPE_CHECKING:
    from repro.demand.requests import DemandAssigner

GB_TO_BITS = 8e9


@dataclass
class Satellite:
    """One Earth-observation satellite in the simulation.

    Parameters
    ----------
    tle:
        The orbit; propagation is SGP4.
    radio:
        Downlink radio configuration (defaults to the Planet-class X-band
        radio of [10], which the paper gives every satellite).
    generation_gb_per_day:
        Continuous imagery capture rate; the paper simulates 100 GB/day.
    chunk_size_gb:
        Capture granularity.  Smaller chunks give finer-grained latency
        accounting at more bookkeeping cost.
    """

    tle: TLE
    radio: RadioConfig = field(default_factory=RadioConfig)
    generation_gb_per_day: float = 100.0
    chunk_size_gb: float = 1.0
    storage: OnboardStorage = field(default_factory=OnboardStorage)
    #: When the satellite last received a downlink plan (None = never; it
    #: then flies blind until its first tx-capable contact).
    plan_epoch: datetime | None = None
    #: Optional energy-balance model; when set, the simulation gates
    #: transmission on battery state of charge and charges in sunlight.
    power: "PowerModel | None" = None
    #: Per-simulation chunk-id source (set by the engine); None falls back
    #: to the module-global counter for standalone use.
    chunk_ids: ChunkIdAllocator | None = None
    #: Multi-tenant demand assigner (set by the engine when the scenario
    #: has tenants); stamps tenant/priority/deadline on capture.
    demand: "DemandAssigner | None" = None

    def __post_init__(self) -> None:
        if self.generation_gb_per_day < 0:
            raise ValueError("generation rate cannot be negative")
        if self.chunk_size_gb <= 0:
            raise ValueError("chunk size must be positive")
        self._propagator = SGP4(self.tle)
        self._accumulated_bits = 0.0

    @property
    def satellite_id(self) -> str:
        return self.tle.name or f"sat-{self.tle.satnum}"

    # -- orbit ---------------------------------------------------------------

    def position_teme(self, when: datetime) -> tuple[np.ndarray, np.ndarray]:
        """TEME position (km) and velocity (km/s) at ``when``."""
        return self._propagator.propagate(when)

    # -- imagery generation ----------------------------------------------------

    def generate_data(self, start: datetime, duration_s: float) -> list[DataChunk]:
        """Capture imagery over [start, start+duration) and store it.

        Emits whole chunks as the continuous capture stream crosses chunk
        boundaries; each chunk's capture time is the boundary-crossing
        instant, so latency accounting is exact even with coarse steps.
        """
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        rate_bits_s = self.generation_gb_per_day * GB_TO_BITS / 86400.0
        if rate_bits_s == 0.0:
            return []
        chunk_bits = self.chunk_size_gb * GB_TO_BITS
        produced: list[DataChunk] = []
        new_bits = rate_bits_s * duration_s
        total = self._accumulated_bits + new_bits
        emitted = 0.0
        while total - emitted >= chunk_bits:
            # Time at which this chunk's last bit was captured.
            bits_into_interval = emitted + chunk_bits - self._accumulated_bits
            offset_s = bits_into_interval / rate_bits_s
            extra = {}
            if self.chunk_ids is not None:
                extra["chunk_id"] = self.chunk_ids.next_id()
            chunk = DataChunk(
                satellite_id=self.satellite_id,
                size_bits=chunk_bits,
                capture_time=start + timedelta(seconds=offset_s),
                **extra,
            )
            if self.demand is not None:
                self.demand.stamp(chunk, self)
            self.storage.capture(chunk)
            produced.append(chunk)
            emitted += chunk_bits
        self._accumulated_bits = total - emitted
        return produced

    # -- plan state ------------------------------------------------------------

    def has_current_plan(self, now: datetime, max_age_s: float) -> bool:
        """Whether the satellite holds a plan fresh enough to act on."""
        if self.plan_epoch is None:
            return False
        return (now - self.plan_epoch).total_seconds() <= max_age_s

    def receive_plan(self, when: datetime) -> None:
        """Record a plan upload during a transmit-capable contact."""
        self.plan_epoch = when

    # -- convenience metrics -----------------------------------------------------

    @property
    def backlog_gb(self) -> float:
        return self.storage.backlog_bits / GB_TO_BITS

    @property
    def unacked_gb(self) -> float:
        return self.storage.unacked_bits / GB_TO_BITS
