"""Spacecraft power: solar charging, battery, and transmit gating.

Cubesat downlink is power-bound in practice: an X-band transmitter draws
tens of watts while a 3U bus harvests a similar order from its panels, so
sustained transmission drains the battery and flight software gates the
radio on state of charge.  The model here is a standard energy-balance
integrator; the simulation engine consults :meth:`can_transmit` before
executing a pass and calls :meth:`step` every interval with the eclipse
state from :mod:`repro.orbits.sun`.

Defaults approximate a 3U EO cubesat: 20 W panels (sun-tracking average),
40 Wh battery, 3 W bus idle, 25 W transmit draw, 20% minimum state of
charge for radio operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PowerModel:
    """Energy-balance battery model."""

    panel_watts: float = 20.0
    battery_capacity_wh: float = 40.0
    idle_load_watts: float = 3.0
    transmit_load_watts: float = 25.0
    min_transmit_soc: float = 0.2
    #: Current stored energy; starts full.
    energy_wh: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if min(self.panel_watts, self.battery_capacity_wh,
               self.idle_load_watts, self.transmit_load_watts) < 0:
            raise ValueError("power parameters cannot be negative")
        if not 0.0 <= self.min_transmit_soc < 1.0:
            raise ValueError("min_transmit_soc must be in [0, 1)")
        if self.energy_wh < 0:
            self.energy_wh = self.battery_capacity_wh

    @property
    def state_of_charge(self) -> float:
        """Stored energy as a fraction of capacity, in [0, 1]."""
        if self.battery_capacity_wh == 0:
            return 0.0
        return self.energy_wh / self.battery_capacity_wh

    def can_transmit(self) -> bool:
        """Whether flight rules allow powering the downlink radio now."""
        return self.state_of_charge >= self.min_transmit_soc

    def step(self, duration_s: float, sunlit: bool,
             transmitting: bool) -> None:
        """Integrate one interval of charging and loads."""
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        hours = duration_s / 3600.0
        generation = self.panel_watts if sunlit else 0.0
        load = self.idle_load_watts + (
            self.transmit_load_watts if transmitting else 0.0
        )
        self.energy_wh += (generation - load) * hours
        self.energy_wh = min(max(self.energy_wh, 0.0),
                             self.battery_capacity_wh)

    def sustainable_transmit_duty(self, sunlit_fraction: float) -> float:
        """Long-run transmit duty cycle the energy balance can sustain.

        Solves generation*sunlit = idle + duty*tx for duty, clamped to
        [0, 1].  Useful for sizing checks: a 20 W panel at 63% sunlit can
        sustain ~38% transmit duty with these defaults.
        """
        if not 0.0 <= sunlit_fraction <= 1.0:
            raise ValueError("sunlit fraction must be in [0, 1]")
        surplus = self.panel_watts * sunlit_fraction - self.idle_load_watts
        if self.transmit_load_watts == 0:
            # A free transmitter still cannot run when the idle load alone
            # exceeds generation: the battery is draining either way.
            return 1.0 if surplus >= 0.0 else 0.0
        return min(max(surplus / self.transmit_load_watts, 0.0), 1.0)
