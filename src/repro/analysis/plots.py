"""Terminal plots: render the paper's CDF figures as Unicode art.

The benchmark harness and CLI run in terminals without a display, so the
figures are drawn with block characters.  ``render_cdfs`` produces the
Fig. 3-style plot: one curve per system over a shared x-axis.
"""

from __future__ import annotations

from repro.analysis.cdf import EmpiricalCDF

_MARKERS = "*o+x#@"


def render_cdfs(
    series: dict[str, list[float]],
    title: str = "",
    x_label: str = "",
    width: int = 64,
    height: int = 16,
    x_max: float | None = None,
) -> str:
    """ASCII CDF plot of several labelled samples.

    ``x_max`` clips the axis (defaults to the p99 of the widest series so
    one outlier does not flatten every curve).
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 16 or height < 4:
        raise ValueError("plot too small to be legible")
    cdfs = {label: EmpiricalCDF(values) for label, values in series.items()
            if values}
    if not cdfs:
        raise ValueError("all series are empty")
    if x_max is None:
        x_max = max(cdf.percentile(99.0) for cdf in cdfs.values())
    if x_max <= 0:
        x_max = 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, cdf) in enumerate(cdfs.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for col in range(width):
            x = x_max * col / (width - 1)
            prob = cdf.evaluate(x)
            row = height - 1 - round(prob * (height - 1))
            if grid[row][col] == " ":
                grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        prob = 1.0 - row_index / (height - 1)
        axis = f"{prob:4.2f} |"
        lines.append(axis + "".join(row))
    lines.append("     +" + "-" * width)
    left = "0"
    right = f"{x_max:.0f}"
    middle = f"{x_max / 2:.0f}"
    pad = width - len(left) - len(middle) - len(right)
    lines.append("      " + left + " " * (pad // 2) + middle
                 + " " * (pad - pad // 2) + right)
    if x_label:
        lines.append(f"      {x_label}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, label in enumerate(cdfs)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def render_histogram(values: list[float], bins: int = 20, width: int = 50,
                     title: str = "") -> str:
    """Horizontal ASCII histogram."""
    if not values:
        raise ValueError("nothing to plot")
    if bins < 1:
        raise ValueError("need at least one bin")
    low, high = min(values), max(values)
    if high == low:
        high = low + 1.0
    counts = [0] * bins
    for v in values:
        index = min(int((v - low) / (high - low) * bins), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = [title] if title else []
    for b, count in enumerate(counts):
        lo = low + (high - low) * b / bins
        bar = "#" * round(width * count / peak) if peak else ""
        lines.append(f"{lo:10.1f} | {bar} {count}")
    return "\n".join(lines)
