"""Result analysis: CDFs, tables, fairness metrics, terminal plots."""

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.contacts import (
    Contact,
    ContactSummary,
    contacts_from_events,
    summarize_contacts,
)
from repro.analysis.fairness import (
    FairnessReport,
    fairness_report,
    gini_coefficient,
    jain_index,
    matching_fairness,
)
from repro.analysis.plots import render_cdfs, render_histogram
from repro.analysis.tables import ComparisonTable, format_table

__all__ = [
    "EmpiricalCDF",
    "ComparisonTable",
    "format_table",
    "jain_index",
    "gini_coefficient",
    "fairness_report",
    "FairnessReport",
    "matching_fairness",
    "render_cdfs",
    "render_histogram",
    "Contact",
    "ContactSummary",
    "contacts_from_events",
    "summarize_contacts",
]
