"""Contact reconstruction from event logs.

The engine emits per-step transmission events; operators think in
*contacts* -- continuous intervals where one satellite talked to one
station.  This module merges events back into contacts with per-contact
statistics (duration, bytes, mean rate, decode success), giving the
operator's view of a run: "that 02:13 Svalbard pass moved 41 GB at
890 Mbps".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta

from repro.simulation.events import EventLog


@dataclass
class Contact:
    """One reconstructed satellite-station contact."""

    satellite_id: str
    station_id: str
    start: datetime
    end: datetime
    bits: float = 0.0
    steps: int = 0
    decoded_steps: int = 0

    @property
    def duration_s(self) -> float:
        return (self.end - self.start).total_seconds()

    @property
    def mean_rate_bps(self) -> float:
        if self.duration_s == 0:
            return 0.0
        return self.bits / self.duration_s

    @property
    def decode_fraction(self) -> float:
        if self.steps == 0:
            return 1.0
        return self.decoded_steps / self.steps


def contacts_from_events(log: EventLog, step_s: float = 60.0,
                         gap_tolerance_steps: int = 1) -> list[Contact]:
    """Merge transmission events into contacts.

    Events for the same (satellite, station) pair separated by at most
    ``gap_tolerance_steps`` scheduling steps belong to one contact (a
    single missed matching round does not split a pass).
    """
    if step_s <= 0:
        raise ValueError("step must be positive")
    transmissions = sorted(
        log.of_kind("transmission"), key=lambda e: (e.satellite_id, e.when)
    )
    max_gap = timedelta(seconds=step_s * (gap_tolerance_steps + 1))
    contacts: list[Contact] = []
    open_contacts: dict[tuple[str, str], Contact] = {}
    for event in transmissions:
        key = (event.satellite_id, event.station_id)
        current = open_contacts.get(key)
        if current is not None and event.when - current.end > max_gap:
            contacts.append(current)
            current = None
        if current is None:
            current = Contact(
                satellite_id=event.satellite_id,
                station_id=event.station_id,
                start=event.when,
                end=event.when + timedelta(seconds=step_s),
            )
            open_contacts[key] = current
        else:
            current.end = event.when + timedelta(seconds=step_s)
        current.bits += float(event.data.get("bits", 0.0))
        current.steps += 1
        if event.data.get("decoded", True):
            current.decoded_steps += 1
    contacts.extend(open_contacts.values())
    contacts.sort(key=lambda c: c.start)
    return contacts


@dataclass
class ContactSummary:
    """Aggregate statistics over a run's contacts."""

    count: int
    total_bits: float
    mean_duration_s: float
    mean_rate_bps: float
    per_station_counts: dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        return (
            f"{self.count} contacts, {self.total_bits / 8e9:.1f} GB, "
            f"mean duration {self.mean_duration_s / 60:.1f} min, "
            f"mean rate {self.mean_rate_bps / 1e6:.0f} Mbps"
        )


def summarize_contacts(contacts: list[Contact]) -> ContactSummary:
    """Aggregate a contact list into one summary."""
    if not contacts:
        return ContactSummary(0, 0.0, 0.0, 0.0)
    per_station: dict[str, int] = {}
    for contact in contacts:
        per_station[contact.station_id] = per_station.get(
            contact.station_id, 0
        ) + 1
    total_bits = sum(c.bits for c in contacts)
    total_duration = sum(c.duration_s for c in contacts)
    return ContactSummary(
        count=len(contacts),
        total_bits=total_bits,
        mean_duration_s=total_duration / len(contacts),
        mean_rate_bps=total_bits / total_duration if total_duration else 0.0,
        per_station_counts=per_station,
    )
