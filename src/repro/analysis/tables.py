"""Plain-text result tables: paper value vs measured value, side by side.

The benchmark harness prints one of these per figure so EXPERIMENTS.md and
CI logs read like the paper's evaluation section.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_table(headers: list[str], rows: list[list[str]],
                 title: str = "") -> str:
    """Monospace-align a table for terminal output."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ComparisonTable:
    """Accumulates (metric, paper value, measured value) rows for one figure."""

    title: str
    unit: str = ""
    rows: list[tuple[str, float, float]] = field(default_factory=list)

    def add(self, metric: str, paper: float, measured: float) -> None:
        self.rows.append((metric, paper, measured))

    def ratio_errors(self) -> dict[str, float]:
        """measured/paper ratio per metric (1.0 = exact reproduction)."""
        out = {}
        for metric, paper, measured in self.rows:
            out[metric] = measured / paper if paper else float("inf")
        return out

    def render(self) -> str:
        headers = ["metric", f"paper ({self.unit})", f"measured ({self.unit})",
                   "measured/paper"]
        body = []
        for metric, paper, measured in self.rows:
            ratio = measured / paper if paper else float("inf")
            body.append(
                [metric, f"{paper:.1f}", f"{measured:.1f}", f"{ratio:.2f}x"]
            )
        return format_table(headers, body, title=self.title)
