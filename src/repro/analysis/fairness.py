"""Fairness metrics for allocation comparisons.

The paper prefers stable matching over the globally optimal one because
"an optimal matching leaves space for a satellite-ground station pair to
achieve sub-optimal results for itself" (Sec. 3.1) -- a fairness argument.
These metrics make it measurable: Jain's index and min/median share over
per-satellite delivered bytes, so the matching ablation can report not
just total value but its distribution across operators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def jain_index(allocations) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].

    1.0 = perfectly equal shares; 1/n = one participant gets everything.
    Zero-allocation participants count (they are the unfairness).
    """
    values = np.asarray(list(allocations), dtype=float)
    if values.size == 0:
        raise ValueError("need at least one allocation")
    if np.any(values < 0):
        raise ValueError("allocations cannot be negative")
    total = values.sum()
    if total == 0.0:
        return 1.0  # everyone equally got nothing
    # Normalize first so subnormal allocations cannot underflow x^2 to 0.
    shares = values / total
    return float(1.0 / (values.size * np.square(shares).sum()))


@dataclass(frozen=True)
class FairnessReport:
    """Distributional summary of one allocation."""

    jain: float
    min_share: float  # worst participant / equal share
    median_share: float
    participants: int
    starved: int  # participants with zero allocation

    def render(self) -> str:
        return (
            f"Jain {self.jain:.3f}, worst/equal {self.min_share:.2f}, "
            f"median/equal {self.median_share:.2f}, "
            f"{self.starved}/{self.participants} starved"
        )


def fairness_report(allocations) -> FairnessReport:
    """Full fairness summary of per-participant allocations."""
    values = np.asarray(list(allocations), dtype=float)
    if values.size == 0:
        raise ValueError("need at least one allocation")
    equal_share = values.mean()
    if equal_share == 0.0:
        return FairnessReport(1.0, 1.0, 1.0, int(values.size),
                              int(values.size))
    return FairnessReport(
        jain=jain_index(values),
        min_share=float(values.min() / equal_share),
        median_share=float(np.median(values) / equal_share),
        participants=int(values.size),
        starved=int(np.count_nonzero(values == 0.0)),
    )


def per_satellite_delivered_gb(report) -> dict[str, float]:
    """Delivered GB per satellite from a SimulationReport.

    Satellites that delivered nothing appear with 0.0 (read from the
    final-backlog keys, which cover the whole fleet).
    """
    delivered = {sid: 0.0 for sid in report.final_backlog_gb}
    for sid, bits in report.satellite_bits.items():
        delivered[sid] = bits / 8e9
    return delivered


def matching_fairness(report) -> FairnessReport:
    """Fairness of a run's deliveries across its satellite fleet."""
    return fairness_report(per_satellite_delivered_gb(report).values())


def gini_coefficient(allocations) -> float:
    """Gini coefficient in [0, 1): 0 = perfect equality.

    Included alongside Jain because networking papers use Jain and
    economics-flavoured ones use Gini; they rank allocations differently
    in the tails.
    """
    values = np.sort(np.asarray(list(allocations), dtype=float))
    if values.size == 0:
        raise ValueError("need at least one allocation")
    if np.any(values < 0):
        raise ValueError("allocations cannot be negative")
    total = values.sum()
    if total == 0.0:
        return 0.0
    n = values.size
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * values) / (n * total)) - (n + 1.0) / n)


def _self_check() -> None:  # pragma: no cover - sanity invariant
    assert math.isclose(jain_index([1, 1, 1, 1]), 1.0)
    assert jain_index([1, 0, 0, 0]) == 0.25
