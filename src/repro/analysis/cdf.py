"""Empirical CDFs -- the paper's plots are all CDFs (Fig. 3a-c)."""

from __future__ import annotations

import numpy as np


class EmpiricalCDF:
    """An empirical cumulative distribution over a sample.

    Evaluation uses the right-continuous step definition
    F(x) = (# samples <= x) / n, and the inverse uses linear interpolation
    between order statistics (numpy's default percentile), matching how
    the paper reads off medians and tail percentiles.
    """

    def __init__(self, samples) -> None:
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        if np.any(np.isnan(data)):
            raise ValueError("samples contain NaN")
        self._sorted = np.sort(data)

    @property
    def n(self) -> int:
        return int(self._sorted.size)

    @property
    def min(self) -> float:
        return float(self._sorted[0])

    @property
    def max(self) -> float:
        return float(self._sorted[-1])

    def evaluate(self, x: float) -> float:
        """F(x): fraction of samples <= x."""
        return float(np.searchsorted(self._sorted, x, side="right")) / self.n

    def percentile(self, q: float) -> float:
        """Inverse CDF at percentile q in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self._sorted, q))

    def median(self) -> float:
        return self.percentile(50.0)

    def mean(self) -> float:
        return float(self._sorted.mean())

    def curve(self, points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) arrays for plotting, sampled at ``points`` quantiles."""
        if points < 2:
            raise ValueError("need at least 2 points")
        qs = np.linspace(0.0, 100.0, points)
        xs = np.percentile(self._sorted, qs)
        return xs, qs / 100.0

    def summary(self, percentiles=(50, 90, 99)) -> dict[int, float]:
        return {int(p): self.percentile(p) for p in percentiles}
