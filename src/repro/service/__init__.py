"""Scheduling-as-a-service: the long-running planner daemon.

The paper's control plane is a centralized scheduler that collects
station/satellite state and computes contact plans; Ground-Station-as-a-
Service operators run exactly that as a *service* -- a daemon that
ingests customer downlink requests and continuously revises plans.
This package wraps a :class:`~repro.simulation.session.SimulationSession`
in a stdlib HTTP daemon (:class:`SchedulerService`) exposing
submit-request / get-plan / stream-plan-deltas / metrics endpoints; the
``repro serve`` CLI subcommand boots one.
"""

from repro.service.daemon import SchedulerService

__all__ = ["SchedulerService"]
