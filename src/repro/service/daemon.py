"""The scheduler daemon: an HTTP control plane over a simulation session.

Stdlib-only (``http.server`` + ``threading``).  One background thread
ticks the session toward its horizon while request-handler threads
ingest events and read plans under a shared lock, so a client can watch
its submitted request change the very next tick's plan.

Endpoints (all JSON):

====== ===================== ==========================================
Method Path                  Meaning
====== ===================== ==========================================
GET    ``/healthz``          liveness + session position
GET    ``/plan``             the currently executing links
GET    ``/plan/deltas``      plan changes with ``seq > since`` (query)
GET    ``/metrics``          session snapshot + interim tenant block
POST   ``/requests``         submit :class:`SubmitRequest` events
POST   ``/quota``            submit a :class:`QuotaUpdate`
POST   ``/outages``          submit an :class:`OutageNotice`
POST   ``/shutdown``         finalize and return the full report
====== ===================== ==========================================

Validation errors map to 400 with ``{"error": ...}``; unknown paths to
404; events after finalization to 409.
"""

from __future__ import annotations

import json
import threading
from datetime import datetime
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.simulation.metrics import SimulationReport
from repro.simulation.session import (
    OutageNotice,
    QuotaUpdate,
    SimulationSession,
    SubmitRequest,
)


def _submit_requests_from(payload: dict) -> list[SubmitRequest]:
    """Parse ``{"requests": [...]}`` (or one bare request object)."""
    raw = payload.get("requests", [payload]) if isinstance(payload, dict) \
        else payload
    if not isinstance(raw, list):
        raise ValueError("'requests' must be a list of request objects")
    events = []
    for item in raw:
        if not isinstance(item, dict):
            raise ValueError("each request must be a JSON object")
        unknown = set(item) - {
            "request_id", "tenant_id", "satellite_id", "chunks",
            "priority", "sla_deadline_s", "region",
        }
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        try:
            events.append(SubmitRequest(
                request_id=str(item["request_id"]),
                tenant_id=str(item["tenant_id"]),
                satellite_id=str(item["satellite_id"]),
                chunks=int(item.get("chunks", 1)),
                priority=(
                    None if item.get("priority") is None
                    else float(item["priority"])
                ),
                sla_deadline_s=(
                    None if item.get("sla_deadline_s") is None
                    else float(item["sla_deadline_s"])
                ),
                region=str(item.get("region", "")),
            ))
        except KeyError as missing:
            raise ValueError(f"request missing field {missing.args[0]!r}")
    return events


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs to the owning :class:`SchedulerService`."""

    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> "SchedulerService":
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the daemon's own logging is the trace/report, not stderr

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/healthz":
                self._reply(200, self.service.health())
            elif parsed.path == "/plan":
                self._reply(200, self.service.current_plan())
            elif parsed.path == "/plan/deltas":
                query = parse_qs(parsed.query)
                since = int(query.get("since", ["0"])[0])
                self._reply(200, self.service.deltas_since(since))
            elif parsed.path == "/metrics":
                self._reply(200, self.service.metrics())
            else:
                self._reply(404, {"error": f"no such path {parsed.path!r}"})
        except ValueError as exc:
            self._reply(400, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/requests":
                payload = self._read_json()
                acks = self.service.submit(_submit_requests_from(payload))
                self._reply(200, {"acks": acks})
            elif parsed.path == "/quota":
                payload = self._read_json()
                acks = self.service.submit([QuotaUpdate(
                    tenant_id=str(payload["tenant_id"]),
                    quota_gb_per_day=float(payload["quota_gb_per_day"]),
                )])
                self._reply(200, {"acks": acks})
            elif parsed.path == "/outages":
                payload = self._read_json()
                acks = self.service.submit([OutageNotice(
                    station_id=str(payload["station_id"]),
                    start=datetime.fromisoformat(str(payload["start"])),
                    end=datetime.fromisoformat(str(payload["end"])),
                )])
                self._reply(200, {"acks": acks})
            elif parsed.path == "/shutdown":
                report = self.service.finalize()
                self._reply(200, {"report": report.to_dict()})
                self.service.request_stop()
            else:
                self._reply(404, {"error": f"no such path {parsed.path!r}"})
        except KeyError as missing:
            self._reply(400, {"error": f"missing field {missing.args[0]!r}"})
        except ValueError as exc:
            self._reply(400, {"error": str(exc)})
        except RuntimeError as exc:
            self._reply(409, {"error": str(exc)})


class SchedulerService:
    """The daemon: a ticking session plus its HTTP control plane.

    ``port=0`` binds an ephemeral port (read it back from ``address``).
    ``pace_s`` throttles the background tick thread (0 = free-running);
    a paced daemon leaves room between ticks for clients to steer the
    plan.  :meth:`serve_forever` blocks until a client POSTs
    ``/shutdown`` (or :meth:`request_stop` is called) and returns the
    finalized report; the session is finalized at whatever step the
    clock reached.
    """

    def __init__(self, session: SimulationSession, *,
                 host: str = "127.0.0.1", port: int = 0,
                 pace_s: float = 0.0):
        self.session = session
        self.pace_s = pace_s
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.service = self
        self._ticker: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) pair."""
        host, port = self._server.server_address[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- session access (handler-facing, all under the lock) ----------------

    def health(self) -> dict:
        with self._lock:
            snap = self.session.snapshot()
        return {
            "status": "ok",
            "step": snap["step"],
            "horizon_steps": snap["horizon_steps"],
            "now": snap["now"],
            "finished": snap["finished"],
        }

    def current_plan(self) -> dict:
        with self._lock:
            return {
                "step": self.session.step,
                "links": self.session.plan(),
            }

    def deltas_since(self, since: int) -> dict:
        with self._lock:
            deltas = self.session.plan_deltas(since)
            latest = len(self.session._deltas)
        return {
            "since": since,
            "latest_seq": latest,
            "deltas": [d.to_dict() for d in deltas],
        }

    def metrics(self) -> dict:
        with self._lock:
            snap = self.session.snapshot()
            demand = self.session.simulation.demand
            if demand is not None:
                snap["tenant_reports"] = demand.accountant.summary()
        return snap

    def submit(self, events) -> list[dict]:
        with self._lock:
            return self.session.ingest(events)

    def finalize(self) -> SimulationReport:
        self._stop.set()
        if self._ticker is not None and self._ticker.is_alive():
            self._ticker.join()
        with self._lock:
            return self.session.finalize()

    # -- lifecycle ----------------------------------------------------------

    def _tick_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                if self.session.step >= self.session.horizon_steps:
                    break
                self.session.advance(steps=1)
            if self.pace_s > 0.0:
                self._stop.wait(self.pace_s)

    def request_stop(self) -> None:
        """Stop ticking and unblock :meth:`serve_forever` (idempotent)."""
        self._stop.set()
        # shutdown() blocks until serve_forever exits, so never call it
        # from a handler thread directly.
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def serve_forever(self) -> SimulationReport:
        """Tick and serve until stopped; return the finalized report."""
        self._ticker = threading.Thread(target=self._tick_loop, daemon=True)
        self._ticker.start()
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._server.server_close()
        return self.finalize()
