"""Matching algorithms for the contact graph (paper Sec. 3.1, step 3).

The paper chooses **stable matching** (Gale-Shapley) so that in a
fragmented, multi-operator network no satellite-station pair has an
incentive to defect from the schedule, and discusses **optimal matching**
as the alternative that maximizes global value.  Both are here, plus a
greedy heuristic, so experiments can compare them (the ablation benches
do).

All algorithms respect station capacity (``max_concurrent``): a station
with multiple independently steerable antennas can serve several
satellites, the common case being capacity 1 ("most current ground
stations can only support point to point links").

Preferences on both sides derive from the same edge weight -- the value of
the link -- exactly as the paper constructs them; ties are broken by index
so results are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scheduling.graph import ContactEdge, ContactGraph


@dataclass(frozen=True)
class Assignment:
    """One scheduled link: a chosen edge of the contact graph."""

    satellite_index: int
    station_index: int
    weight: float
    bitrate_bps: float
    elevation_deg: float = 90.0
    range_km: float = 0.0
    required_esn0_db: float = -100.0

    @classmethod
    def from_edge(cls, edge: ContactEdge) -> "Assignment":
        return cls(
            satellite_index=edge.satellite_index,
            station_index=edge.station_index,
            weight=edge.weight,
            bitrate_bps=edge.bitrate_bps,
            elevation_deg=edge.elevation_deg,
            range_km=edge.range_km,
            required_esn0_db=edge.required_esn0_db,
        )


def _station_capacities(graph: ContactGraph,
                        capacities: list[int] | None) -> list[int]:
    if capacities is None:
        return [1] * graph.num_stations
    if len(capacities) != graph.num_stations:
        raise ValueError(
            f"capacities length {len(capacities)} != stations {graph.num_stations}"
        )
    return capacities


def _assignments_at(graph: ContactGraph, positions: list[int],
                    sat_l: list[int], gs_l: list[int],
                    w_l: list[float]) -> list[Assignment]:
    """Assignments for the chosen edge positions of the graph's columns.

    Extracts only the chosen positions: the matching is bounded by
    min(M, N) while the edge count is not, so converting whole columns
    to lists here would dominate small-step costs.  ``float()`` on a
    float64 element is value-exact, so assignments are bit-identical to
    the previous whole-column ``tolist`` extraction.
    """
    cols = graph.columns()
    bitrate = cols.bitrate_bps
    elev = cols.elevation_deg
    rng = cols.range_km
    esn0 = cols.required_esn0_db
    return [
        Assignment(
            satellite_index=sat_l[p],
            station_index=gs_l[p],
            weight=w_l[p],
            bitrate_bps=float(bitrate[p]),
            elevation_deg=float(elev[p]),
            range_km=float(rng[p]),
            required_esn0_db=float(esn0[p]),
        )
        for p in positions
    ]


def gale_shapley(graph: ContactGraph,
                 capacities: list[int] | None = None) -> list[Assignment]:
    """Satellite-proposing deferred acceptance (Gale-Shapley).

    Satellites propose to stations in descending edge weight; a station
    holds its best ``capacity`` proposals and rejects the rest.  Runs in
    O(E log E) for preference sorting plus O(E) proposal rounds -- the
    K^2 bound the paper quotes with K = max(M, N).

    Operates on the graph's column arrays (edge positions, never edge
    objects): preference order comes from one fleet-wide lexsort and the
    proposal loop shuffles integer positions, so matching cost tracks the
    edge count without materializing per-edge objects.  Order semantics
    are identical to the historical edge-object implementation --
    satellites prefer (higher weight, lower station index), stations
    prefer (higher weight, lower satellite index) -- and pair uniqueness
    makes every comparison key distinct, so results are deterministic.

    The result is stable: no satellite-station pair both strictly prefer
    each other to their assignments (verified by :func:`is_stable` in
    tests).
    """
    caps = _station_capacities(graph, capacities)
    cols = graph.columns()
    sat_arr, gs_arr, w_arr = (
        cols.satellite_index, cols.station_index, cols.weight
    )
    sat_l = sat_arr.tolist()
    gs_l = gs_arr.tolist()
    w_l = w_arr.tolist()
    # Preference lists: per satellite, edge positions by descending weight
    # (ties: ascending station), via one lexsort over all edges.  Edge
    # order is satellite-major, so ascending-satellite grouping preserves
    # the historical first-appearance key order.
    order = np.lexsort((gs_arr, -w_arr, sat_arr))
    sat_sorted = sat_arr[order]
    uniq_sats, starts = np.unique(sat_sorted, return_index=True)
    order_l = order.tolist()
    bounds = starts.tolist() + [len(order_l)]
    prefs: dict[int, list[int]] = {
        int(s): order_l[bounds[k]:bounds[k + 1]]
        for k, s in enumerate(uniq_sats.tolist())
    }
    next_proposal = {sat: 0 for sat in prefs}
    # Station state: currently held edge positions, kept sorted ascending
    # by (weight, -satellite) so the weakest is at index 0.
    held: dict[int, list[int]] = {}
    free = list(prefs.keys())
    station_key = lambda p: (w_l[p], -sat_l[p])  # noqa: E731
    while free:
        sat = free.pop()
        options = prefs[sat]
        idx = next_proposal[sat]
        if idx >= len(options):
            continue  # exhausted all stations; stays unmatched
        next_proposal[sat] = idx + 1
        pos = options[idx]
        station = gs_l[pos]
        station_held = held.setdefault(station, [])
        capacity = caps[station]
        if len(station_held) < capacity:
            station_held.append(pos)
            station_held.sort(key=station_key)
        else:
            weakest = station_held[0]
            if station_key(pos) > station_key(weakest):
                station_held[0] = pos
                station_held.sort(key=station_key)
                free.append(sat_l[weakest])
            else:
                free.append(sat)
    chosen = [pos for positions in held.values() for pos in positions]
    return _assignments_at(graph, chosen, sat_l, gs_l, w_l)


def greedy_matching(graph: ContactGraph,
                    capacities: list[int] | None = None) -> list[Assignment]:
    """Globally greedy: repeatedly take the heaviest remaining feasible edge.

    A 1/2-approximation to the optimum; cheaper and simpler than either
    alternative, included as the ablation straw man.  Like
    :func:`gale_shapley`, consumes the graph's column arrays: the
    (-weight, satellite, station) scan order is one lexsort.
    """
    caps = _station_capacities(graph, capacities)
    cols = graph.columns()
    sat_l = cols.satellite_index.tolist()
    gs_l = cols.station_index.tolist()
    w_l = cols.weight.tolist()
    order = np.lexsort(
        (cols.station_index, cols.satellite_index, -cols.weight)
    )
    remaining_cap = list(caps)
    taken_sats: set[int] = set()
    chosen: list[int] = []
    for pos in order.tolist():
        sat = sat_l[pos]
        if sat in taken_sats:
            continue
        if remaining_cap[gs_l[pos]] <= 0:
            continue
        taken_sats.add(sat)
        remaining_cap[gs_l[pos]] -= 1
        chosen.append(pos)
    return _assignments_at(graph, chosen, sat_l, gs_l, w_l)


def hungarian(cost: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Minimum-cost assignment on a rectangular cost matrix.

    A from-scratch Jonker-Volgenant-style shortest-augmenting-path
    implementation, O(n^3).  Returns (row_indices, col_indices) like
    ``scipy.optimize.linear_sum_assignment`` (against which the test suite
    cross-checks it).  Requires rows <= cols; transpose first otherwise.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    n_rows, n_cols = cost.shape
    transposed = False
    if n_rows > n_cols:
        cost = cost.T
        n_rows, n_cols = cost.shape
        transposed = True
    # Potentials (dual variables) and matching arrays, 1-indexed internally.
    u = np.zeros(n_rows + 1)
    v = np.zeros(n_cols + 1)
    match_col = np.zeros(n_cols + 1, dtype=int)  # col -> row (0 = free)
    way = np.zeros(n_cols + 1, dtype=int)
    for row in range(1, n_rows + 1):
        match_col[0] = row
        j0 = 0
        minv = np.full(n_cols + 1, np.inf)
        used = np.zeros(n_cols + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = match_col[j0]
            delta = np.inf
            j1 = -1
            for j in range(1, n_cols + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1, j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n_cols + 1):
                if used[j]:
                    u[match_col[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match_col[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            match_col[j0] = match_col[j1]
            j0 = j1
    rows = []
    cols = []
    for j in range(1, n_cols + 1):
        if match_col[j] != 0:
            rows.append(match_col[j] - 1)
            cols.append(j - 1)
    order = np.argsort(rows)
    row_idx = np.array(rows)[order]
    col_idx = np.array(cols)[order]
    if transposed:
        return col_idx, row_idx
    return row_idx, col_idx


def max_weight_matching(graph: ContactGraph,
                        capacities: list[int] | None = None) -> list[Assignment]:
    """Optimal (maximum total value) matching via the Hungarian algorithm.

    Station capacity c is handled by replicating its column c times.
    Zero-weight pairs are non-edges; the assignment is filtered to real
    edges afterwards, so the optimum is over the true graph.
    """
    caps = _station_capacities(graph, capacities)
    if not graph.edges:
        return []
    # Column expansion for capacities.
    col_station: list[int] = []
    for j, cap in enumerate(caps):
        col_station.extend([j] * max(0, cap))
    if not col_station:
        return []
    station_cols: dict[int, list[int]] = {}
    for col, j in enumerate(col_station):
        station_cols.setdefault(j, []).append(col)
    weight = np.zeros((graph.num_satellites, len(col_station)))
    edge_lookup: dict[tuple[int, int], ContactEdge] = {}
    for e in graph.edges:
        for col in station_cols.get(e.station_index, []):
            weight[e.satellite_index, col] = e.weight
        edge_lookup[(e.satellite_index, e.station_index)] = e
    # Maximize weight == minimize (max - weight).
    cost = weight.max() - weight
    rows, cols = hungarian(cost)
    result = []
    for r, c in zip(rows, cols):
        if weight[r, c] <= 0.0:
            continue  # matched to a non-edge (padding)
        edge = edge_lookup[(int(r), col_station[int(c)])]
        result.append(Assignment.from_edge(edge))
    return result


def is_stable(graph: ContactGraph, assignments: list[Assignment],
              capacities: list[int] | None = None) -> bool:
    """Check the stability property of a matching.

    A blocking pair is an edge (s, g) where s strictly prefers g to its
    current assignment (or is unassigned) AND g either has spare capacity
    or holds some satellite it values strictly less than s.
    """
    caps = _station_capacities(graph, capacities)
    sat_weight: dict[int, float] = {}
    station_held: dict[int, list[float]] = {}
    for a in assignments:
        sat_weight[a.satellite_index] = a.weight
        station_held.setdefault(a.station_index, []).append(a.weight)
    for edge in graph.edges:
        current = sat_weight.get(edge.satellite_index)
        sat_prefers = current is None or edge.weight > current
        if not sat_prefers:
            continue
        held = station_held.get(edge.station_index, [])
        has_room = len(held) < caps[edge.station_index]
        would_evict = any(edge.weight > w for w in held)
        if has_room or would_evict:
            return False
    return True


def diversity_groups(
    graph: ContactGraph,
    assignments: list[Assignment],
    max_receivers: int,
) -> dict[int, list[ContactEdge]]:
    """Pick extra listening stations per matched satellite (diversity).

    For each assignment, stations that (a) can also see the satellite --
    they have an edge to it in the same priced graph -- and (b) were not
    matched as anyone's primary nor already claimed as another
    satellite's secondary, are recruited as additional receivers, best
    candidate edge first (descending weight, ascending station index for
    determinism).  Each satellite gets at most ``max_receivers - 1``
    secondaries.

    Purely a function of the graph's edges and the matching, so the
    selection is deterministic and identical whether the graph was built
    by the scalar or the batched path (those are bit-identical by the
    PR-1 equivalence contract).
    """
    if max_receivers < 1:
        raise ValueError("max_receivers must be >= 1")
    taken = {a.station_index for a in assignments}
    groups: dict[int, list[ContactEdge]] = {}
    for a in assignments:
        candidates = [
            e for e in graph.edges_for_satellite(a.satellite_index)
            if e.station_index != a.station_index
            and e.station_index not in taken
        ]
        candidates.sort(key=lambda e: (-e.weight, e.station_index))
        chosen = candidates[: max_receivers - 1]
        for e in chosen:
            taken.add(e.station_index)
        groups[a.satellite_index] = chosen
    return groups
