"""Ground-station beamforming -- the paper's Sec. 3.3 extension.

"Some modern designs of ground stations have explored beamforming at the
ground station.  This will be an interesting addition to DGS by enabling
each ground station to split power between multiple satellites ... We
leave the exploration of this new optimization problem to future work."

Model: a station with ``beams`` = B can hold B simultaneous links, but an
analog power-split aperture loses ``10*log10(b)`` dB of gain on each link
when b beams are active (a digital array with per-beam full gain is the
``lossless=True`` variant).  The scheduler matches with per-station
capacity B, then *re-prices* each link for the beam count actually used:
the DVB-S2 operating point is re-selected at the penalized Es/N0, and
links that no longer close are dropped.  The plan the satellites receive
is therefore already beam-aware -- consistent with the ack-free design,
where transmission parameters must be committed in advance.
"""

from __future__ import annotations

import math
from datetime import datetime

from repro.linkbudget.dvbs2 import best_modcod
from repro.scheduling.matching import Assignment
from repro.scheduling.scheduler import DownlinkScheduler, ScheduleStep


class BeamformingScheduler(DownlinkScheduler):
    """DGS scheduler for stations with multi-beam receivers.

    Parameters (beyond :class:`DownlinkScheduler`):

    beams:
        Simultaneous beams per station (uniform; per-station counts can be
        passed via ``capacities`` instead).
    lossless:
        True models a fully digital array (no gain split); False (default)
        models an analog power split costing 10*log10(b) dB per link.
    """

    def __init__(self, *args, beams: int = 2, lossless: bool = False, **kwargs):
        if beams < 1:
            raise ValueError("beams must be >= 1")
        if "capacities" not in kwargs or kwargs["capacities"] is None:
            kwargs["capacities"] = None  # set after super().__init__
        super().__init__(*args, **kwargs)
        self.beams = beams
        self.lossless = lossless
        if self.capacities is None:
            self.capacities = [beams] * len(self.network)

    def schedule_step(self, when: datetime,
                      forecast_issued_at: datetime | None = None) -> ScheduleStep:
        step = super().schedule_step(when, forecast_issued_at)
        if self.lossless:
            return step
        return ScheduleStep(
            when=step.when,
            assignments=self._reprice(step.assignments),
            num_edges=step.num_edges,
        )

    def _reprice(self, assignments: list[Assignment]) -> list[Assignment]:
        """Re-select MODCODs under the per-station beam-split penalty."""
        by_station: dict[int, list[Assignment]] = {}
        for a in assignments:
            by_station.setdefault(a.station_index, []).append(a)
        repriced: list[Assignment] = []
        for station_index, group in by_station.items():
            active = len(group)
            penalty_db = 10.0 * math.log10(active)
            for a in group:
                if active == 1:
                    repriced.append(a)
                    continue
                sat = self.satellites[a.satellite_index]
                budget = self._link_budget_for(sat, station_index)
                # The matching-time Es/N0 backed out of the committed
                # MODCOD and margin; recompute the full budget cheaply by
                # shifting the stored requirement instead.
                esn0 = self._esn0_for(a, budget) - penalty_db
                modcod = best_modcod(esn0, budget.acm_margin_db)
                if modcod is None:
                    continue  # this beam cannot close; drop the link
                channels = min(sat.radio.channels,
                               self.network[station_index].receiver.channels)
                repriced.append(Assignment(
                    satellite_index=a.satellite_index,
                    station_index=a.station_index,
                    weight=a.weight,
                    bitrate_bps=modcod.bitrate_bps(sat.radio.symbol_rate_baud)
                    * channels,
                    elevation_deg=a.elevation_deg,
                    range_km=a.range_km,
                    required_esn0_db=modcod.esn0_db,
                ))
        return repriced

    def _esn0_for(self, assignment: Assignment, budget) -> float:
        """Clear-sky Es/N0 at the assignment's geometry (weather-free).

        Weather already shaped the matching; the beam penalty applies on
        top of the committed operating point, so recomputing from the
        clear-sky budget with the original margin is a close, cheap
        approximation.
        """
        sat = self.satellites[assignment.satellite_index]
        station = self.network[assignment.station_index]
        result = budget.evaluate(
            range_km=assignment.range_km,
            elevation_deg=assignment.elevation_deg,
            station_latitude_deg=station.latitude_deg,
        )
        return result.esn0_db
