"""DGS's downlink scheduler -- the paper's core contribution (Sec. 3.1).

Per time instant the scheduler:

1. propagates every satellite and finds which are above each station's
   horizon ("Orbit Calculations");
2. builds the weighted bipartite satellite x station graph, with edge
   weights from the link-quality model and the value function Phi
   ("Graph Construction");
3. picks a matching -- stable (Gale-Shapley, the paper's choice), optimal
   (max-weight assignment), or greedy -- under point-to-point capacity
   constraints ("Matching").

The value function is pluggable (:mod:`repro.scheduling.value_functions`):
latency-optimized, throughput-optimized, SLA/geography-weighted, or
auction-based, exactly the knob Fig. 3c turns.
"""

from repro.scheduling.value_functions import (
    AuctionValue,
    CompositeValue,
    DeadlineSlaValue,
    LatencyValue,
    PriorityValue,
    ThroughputValue,
    ValueFunction,
)
from repro.scheduling.graph import ContactEdge, ContactGraph, build_contact_graph
from repro.scheduling.matching import (
    Assignment,
    diversity_groups,
    gale_shapley,
    greedy_matching,
    hungarian,
    is_stable,
    max_weight_matching,
)
from repro.scheduling.scheduler import DownlinkScheduler, ScheduleStep
from repro.scheduling.horizon import HorizonScheduler
from repro.scheduling.beamforming import BeamformingScheduler
from repro.scheduling.pointing import PointingTrack, pointing_tracks

__all__ = [
    "ValueFunction",
    "DeadlineSlaValue",
    "LatencyValue",
    "ThroughputValue",
    "PriorityValue",
    "AuctionValue",
    "CompositeValue",
    "ContactEdge",
    "ContactGraph",
    "build_contact_graph",
    "Assignment",
    "diversity_groups",
    "gale_shapley",
    "greedy_matching",
    "hungarian",
    "max_weight_matching",
    "is_stable",
    "DownlinkScheduler",
    "ScheduleStep",
    "HorizonScheduler",
    "BeamformingScheduler",
    "PointingTrack",
    "pointing_tracks",
]
