"""Spatial culling: coarse-grid candidate-pair prefiltering.

At mega-constellation scale the dense M x N visibility matrix is the
per-step cost floor -- 10k satellites x 1000 stations is 10M
elevation/range evaluations per minute even though only a few percent of
pairs can ever be simultaneously visible.  This module makes the per-step
cost track *candidate* pairs instead: stations are bucketed once into
coarse latitude/longitude cells, and each step the fleet's subsatellite
points are tested against the occupied cells only (an ``M x C`` dot
product with C ~ a few hundred, evaluated as one BLAS matmul).  Stations
in cells that intersect a satellite's visibility disc become candidate
pairs; the exact elevation test then runs on candidates only.

The prefilter is **conservative by construction**: a pair is culled only
when the great-circle angle between the subsatellite point and the cell
is provably beyond the satellite's horizon at the network's most
permissive elevation mask.  The spherical-Earth bound

    psi_max = arccos((R_station / r_sat) * cos(eps)) - eps

(the closed-form regional-coverage geometry) is padded by the cell's
circumradius plus a fixed margin covering Earth oblateness and the
geodetic-vs-geocentric horizon deviation, so the candidate set is always
a superset of the truly visible pairs -- the property the equivalence
tests pin (culling on vs off produces bit-identical contact graphs).
"""

from __future__ import annotations

import math

import numpy as np

from repro.groundstations.network import GroundStationNetwork
from repro.orbits.frames import geodetic_to_ecef

__all__ = ["StationGrid", "max_central_angle_rad"]

#: Lower bound on any station's geocentric radius (km): below the WGS72
#: polar radius, so the psi_max bound stays conservative for every real
#: site (larger station radius -> smaller visibility disc).
_R_STATION_MIN_KM = 6356.0

#: Fixed angular margin (degrees) absorbing everything the spherical
#: bound ignores: geodetic-vs-geocentric latitude deviation (<= 0.20 deg),
#: Earth oblateness, and station altitude effects on the horizon.
_MARGIN_DEG = 1.0


def max_central_angle_rad(sat_radius_km: np.ndarray,
                          min_elevation_deg: float) -> np.ndarray:
    """Max Earth-central angle at which a satellite can clear the mask.

    Spherical-Earth closed form: a satellite at geocentric radius ``r``
    is above elevation ``eps`` of a station only when the central angle
    between their radials is at most ``arccos((R/r) cos eps) - eps``.
    Uses the conservative minimum station radius so the returned angle is
    an upper bound for every real station.
    """
    r = np.asarray(sat_radius_km, dtype=float)
    eps = np.radians(min_elevation_deg)
    ratio = np.clip(_R_STATION_MIN_KM / np.maximum(r, _R_STATION_MIN_KM), 0.0, 1.0)
    return np.arccos(np.clip(ratio * np.cos(eps), -1.0, 1.0)) - eps


class StationGrid:
    """Coarse-cell bucketing of a ground network for candidate generation.

    Construction is one-time per network: stations are assigned to
    ``cell_size_deg`` latitude/longitude cells; each occupied cell keeps
    its member station indices (ascending), a unit center vector, and a
    circumradius (max angle from center to any member).  Per step,
    :meth:`candidate_pairs` reduces the fleet-vs-network product to a
    fleet-vs-occupied-cells product.
    """

    def __init__(self, network: GroundStationNetwork,
                 cell_size_deg: float = 10.0,
                 margin_deg: float = _MARGIN_DEG):
        if cell_size_deg <= 0.0:
            raise ValueError("cell size must be positive")
        self.cell_size_deg = float(cell_size_deg)
        self.margin_rad = float(np.radians(margin_deg))
        stations = list(network)
        self.num_stations = len(stations)
        #: The network's most permissive mask: the prefilter must keep any
        #: pair that could clear *some* station's elevation cutoff.
        self.min_elevation_deg = min(
            (st.min_elevation_deg for st in stations), default=0.0
        )
        if self.num_stations == 0:
            self.cell_members = np.empty(0, dtype=np.intp)
            self.cell_start = np.zeros(1, dtype=np.intp)
            self.cell_count = np.empty(0, dtype=np.intp)
            self.cell_centers = np.empty((0, 3))
            self.cell_radius_rad = np.empty(0)
            return

        ecef = np.array([
            geodetic_to_ecef(st.latitude_deg, st.longitude_deg, st.altitude_km)
            for st in stations
        ])
        unit = ecef / np.linalg.norm(ecef, axis=1, keepdims=True)
        lat = np.array([st.latitude_deg for st in stations])
        lon = np.array([st.longitude_deg for st in stations])
        lat_bin = np.minimum(
            ((lat + 90.0) // cell_size_deg).astype(np.int64),
            int(np.ceil(180.0 / cell_size_deg)) - 1,
        )
        lon_bin = np.minimum(
            ((lon + 180.0) // cell_size_deg).astype(np.int64),
            int(np.ceil(360.0 / cell_size_deg)) - 1,
        )
        lon_bins_total = int(np.ceil(360.0 / cell_size_deg))
        cell_id = lat_bin * lon_bins_total + lon_bin

        # Group stations by cell, members ascending within each cell so the
        # expanded candidate lists preserve row-major (sat, station) order
        # after the lexsort in candidate_pairs.
        order = np.lexsort((np.arange(self.num_stations), cell_id))
        sorted_cells = cell_id[order]
        unique_cells, start_pos, counts = np.unique(
            sorted_cells, return_index=True, return_counts=True
        )
        self.cell_members = order.astype(np.intp)
        self.cell_start = start_pos.astype(np.intp)
        self.cell_count = counts.astype(np.intp)

        centers = []
        radii = []
        for c in range(unique_cells.size):
            members = self.cell_members[
                self.cell_start[c]:self.cell_start[c] + self.cell_count[c]
            ]
            center = unit[members].mean(axis=0)
            center /= np.linalg.norm(center)
            cosang = np.clip(unit[members] @ center, -1.0, 1.0)
            radii.append(float(np.arccos(cosang.min())))
            centers.append(center)
        self.cell_centers = np.array(centers)  # (C, 3) unit vectors
        self.cell_radius_rad = np.array(radii)
        self.num_cells = unique_cells.size

    # -- per-step candidate generation ----------------------------------

    def candidate_pairs(
        self, sat_ecef: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Candidate ``(sat_idx, gs_idx)`` arrays for one instant.

        ``sat_ecef`` is the fleet's ``(M, 3)`` ECEF positions (km).  The
        result is sorted lexicographically by (satellite, station) -- the
        same row-major order ``np.nonzero`` gives the dense path -- and is
        a superset of the geometrically visible pairs.
        """
        sat_ecef = np.asarray(sat_ecef, dtype=float)
        m = sat_ecef.shape[0]
        if m == 0 or self.num_stations == 0:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty
        r = np.linalg.norm(sat_ecef, axis=1)
        sat_unit = sat_ecef / r[:, None]
        psi_max = max_central_angle_rad(r, self.min_elevation_deg)

        # Threshold per (sat, cell): psi_max_i + radius_c + margin, in
        # cosine space via the angle-sum identity.  Two stages: a coarse
        # (M, C) compare against the fleet-wide worst-case horizon angle
        # (a per-cell threshold vector, so no M x C threshold matrix is
        # materialized), then the exact per-satellite threshold on the
        # coarse hits only.  The 1e-12 slack keeps the coarse pass a
        # strict superset under libm rounding differences, so the refined
        # set equals the full per-(sat, cell) test exactly.
        pad = self.cell_radius_rad + self.margin_rad  # (C,)
        psi_hi = float(psi_max.max())
        cos_coarse = (
            math.cos(psi_hi) * np.cos(pad)
            - math.sin(psi_hi) * np.sin(pad)
            - 1e-12
        )
        cos_angle = sat_unit @ self.cell_centers.T  # (M, C)
        hit_sat, hit_cell = np.nonzero(cos_angle >= cos_coarse[None, :])
        if hit_sat.size:
            exact = (
                np.cos(psi_max[hit_sat]) * np.cos(pad[hit_cell])
                - np.sin(psi_max[hit_sat]) * np.sin(pad[hit_cell])
            )
            refined = cos_angle[hit_sat, hit_cell] >= exact
            hit_sat = hit_sat[refined]
            hit_cell = hit_cell[refined]
        if hit_sat.size == 0:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty

        # Expand cell hits to their member stations (CSR-style gather).
        counts = self.cell_count[hit_cell]
        total = int(counts.sum())
        sat_idx = np.repeat(hit_sat, counts).astype(np.intp, copy=False)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        flat = (
            np.arange(total)
            - np.repeat(bounds[:-1], counts)
            + np.repeat(self.cell_start[hit_cell], counts)
        )
        gs_idx = self.cell_members[flat]
        # Row-major (sat, station) order via a single flat key: one
        # argsort instead of a two-key lexsort (pairs are unique, so sort
        # stability does not matter).  int32 keys sort measurably faster
        # and cover any fleet x network product below 2**31.
        key = sat_idx * self.num_stations + gs_idx
        if m * self.num_stations < 2**31:
            key = key.astype(np.int32)
        order = np.argsort(key)
        return sat_idx[order], gs_idx[order]
