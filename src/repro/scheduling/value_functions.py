"""Value functions Phi(x, t) weighting satellite-station edges.

Sec. 3.1: "for any subset x of X_i and time t elapsed since the capture of
the data, Phi(x, t) denotes the value of transmitting that data to Earth".
The paper gives two canonical instances -- Phi = t to minimize latency and
Phi = |x| to maximize throughput -- and sketches SLA/geography weighting
and bidding.  All four are here, plus composition.

A value function sees the satellite's queue head (what would actually be
sent), the predicted link bitrate, and the step duration, and returns the
edge weight for the matching stage.  Higher = more valuable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Protocol, runtime_checkable

import numpy as np

from repro.satellites.satellite import Satellite

#: Reference instant for integer-microsecond timestamps.  Chunk ages are
#: ``(now_us - capture_us) / 1e6``: the microsecond difference is an exact
#: int64, and dividing it by 1e6 performs the single correctly-rounded
#: float division that ``timedelta.total_seconds()`` performs -- which is
#: what makes the vectorized ages bit-identical to the scalar path.
_US_REF = datetime(2000, 1, 1)


def _microseconds_since_ref(when: datetime) -> int:
    delta = when - _US_REF
    return (delta.days * 86400 + delta.seconds) * 1_000_000 + delta.microseconds


class FleetQueueProfile:
    """Padded per-satellite send-queue arrays for vectorized edge pricing.

    ``prefix_age_value`` reads three per-chunk fields (remaining bits,
    size, capture time) plus the queue backlog and head size; this cache
    holds them as ``(num_satellites, max_chunks)`` arrays so a value
    function can price every edge of an instant in a handful of numpy
    passes instead of a Python call per pair.  Rows refresh lazily against
    :attr:`OnboardStorage.version`, so between scheduling steps only the
    satellites that actually transmitted, captured, or requeued data are
    re-read.
    """

    def __init__(self, satellites: list[Satellite]):
        self._satellites = satellites
        self._storages = [sat.storage for sat in satellites]
        n = len(satellites)
        self._versions = np.full(n, -1, dtype=np.int64)
        self._cols = 4
        self._alloc(n, self._cols)

    def _alloc(self, n: int, cols: int) -> None:
        remaining = np.zeros((n, cols))
        sizes = np.ones((n, cols))
        capture_us = np.zeros((n, cols), dtype=np.int64)
        old = getattr(self, "_remaining", None)
        if old is None:
            self._counts = np.zeros(n, dtype=np.intp)
            self._backlog = np.zeros(n)
            self._head_size = np.zeros(n)
        else:
            # Growing the chunk axis: copy the existing rows.  The new
            # columns hold the padding values (remaining 0, size 1,
            # capture 0), which contribute an exact +0.0 to any prefix
            # evaluation -- so grown rows stay valid and versions are
            # untouched.
            prev = old.shape[1]
            remaining[:, :prev] = old
            sizes[:, :prev] = self._sizes
            capture_us[:, :prev] = self._capture_us
        self._remaining = remaining
        self._sizes = sizes
        self._capture_us = capture_us
        self._cols = cols

    def refresh(self, sat_indices) -> None:
        """Re-read queues whose mutation counter moved since last seen."""
        storages = self._storages
        idx = np.asarray(sat_indices)
        idx_l = idx.tolist()
        current = np.fromiter(
            (storages[i].version for i in idx_l), np.int64, count=idx.size
        )
        moved = idx[current != self._versions[idx]]
        for i in moved.tolist():
            storage = storages[i]
            remaining, sizes, captures, backlog, head_size = (
                storage.queue_snapshot()
            )
            count = len(remaining)
            if count > self._cols:
                self._alloc(len(self._satellites), max(count, 2 * self._cols))
            row_r = self._remaining[i]
            row_s = self._sizes[i]
            row_c = self._capture_us[i]
            row_r[:count] = remaining
            row_r[count:] = 0.0
            row_s[:count] = sizes
            row_s[count:] = 1.0
            for c in range(count):
                row_c[c] = _microseconds_since_ref(captures[c])
            row_c[count:] = 0
            self._counts[i] = count
            self._backlog[i] = backlog
            self._head_size[i] = head_size
            self._versions[i] = storage.version

    def prefix_age_values(self, sat_idx: np.ndarray, bits_budgets: np.ndarray,
                          now: datetime) -> np.ndarray:
        """Vectorized :meth:`OnboardStorage.prefix_age_value` per edge.

        ``sat_idx[p]`` is the satellite of edge ``p`` and ``bits_budgets[p]``
        its step budget.  The chunk loop runs sequentially over the (few)
        queue positions and vectorized over edges, performing the same
        elementwise operations in the same order as the scalar loop --
        padded positions contribute an exact ``+0.0``.
        """
        now_us = _microseconds_since_ref(now)
        left = np.maximum(0.0, bits_budgets)
        value = np.zeros(len(left))
        cmax = int(self._counts[sat_idx].max()) if sat_idx.size else 0
        for c in range(cmax):
            remaining = self._remaining[sat_idx, c]
            sendable = np.minimum(remaining, left)
            ages = np.maximum(
                0.0, (now_us - self._capture_us[sat_idx, c]) / 1e6
            )
            value = value + ages * (sendable / self._sizes[sat_idx, c])
            left = left - sendable
            if not left.any():
                # Every edge's budget is exactly exhausted; all further
                # chunks would contribute an exact +0.0.
                break
        return value

    def backlog_of(self, sat_idx: np.ndarray) -> np.ndarray:
        return self._backlog[sat_idx]

    def head_size_of(self, sat_idx: np.ndarray) -> np.ndarray:
        return self._head_size[sat_idx]

    def counts_of(self, sat_idx: np.ndarray) -> np.ndarray:
        return self._counts[sat_idx]


@runtime_checkable
class ValueFunction(Protocol):
    """Edge-weight oracle for the bipartite matching."""

    def edge_value(
        self,
        satellite: Satellite,
        station_id: str,
        bitrate_bps: float,
        now: datetime,
        step_s: float,
    ) -> float:
        """Value of satellite->station transmitting for one step at this rate."""
        ...


@dataclass(frozen=True)
class LatencyValue:
    """Phi(x, t) = t, summed over the data x the link can move this step.

    Per the paper (Sec. 3.2): "we compute the value corresponding to the
    data that the satellite can send on that link using Phi".  With
    Phi = t, that value is the total age of the queue prefix the link's
    rate can drain during the step -- so both staleness and link rate
    matter, and the matching drains old data over the fastest feasible
    links.
    """

    #: Floor each chunk's age at one step so freshly captured data still
    #: attracts downlink capacity.
    min_age_factor: float = 1.0

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        if bitrate_bps <= 0.0:
            return 0.0
        value = satellite.storage.prefix_age_value(bitrate_bps * step_s, now)
        if value <= 0.0 and satellite.storage.backlog_bits > 0.0:
            # All-new data: value by deliverable volume at a one-step age.
            deliverable = min(bitrate_bps * step_s, satellite.storage.backlog_bits)
            chunk = satellite.storage.peek_sendable()
            size = chunk.size_bits if chunk is not None else deliverable
            value = self.min_age_factor * step_s * deliverable / max(size, 1.0)
        return value

    def edge_values(self, profile: FleetQueueProfile, sat_idx: np.ndarray,
                    bitrate_bps: np.ndarray, now: datetime,
                    step_s: float) -> np.ndarray:
        """Vectorized :meth:`edge_value` over one instant's edges.

        Bit-identical to the scalar method: the prefix-age kernel mirrors
        its loop operation for operation, and the all-new-data fallback is
        the same expression evaluated elementwise.
        """
        budgets = bitrate_bps * step_s
        value = profile.prefix_age_values(sat_idx, budgets, now)
        backlog = profile.backlog_of(sat_idx)
        deliverable = np.minimum(budgets, backlog)
        head_size = np.where(
            profile.counts_of(sat_idx) > 0,
            profile.head_size_of(sat_idx), deliverable,
        )
        fallback = (self.min_age_factor * step_s * deliverable
                    / np.maximum(head_size, 1.0))
        value = np.where((value <= 0.0) & (backlog > 0.0), fallback, value)
        return np.where(bitrate_bps > 0.0, value, 0.0)


@dataclass(frozen=True)
class ThroughputValue:
    """Phi(x, t) = |x|: the bits this link can move during the step."""

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        if bitrate_bps <= 0.0:
            return 0.0
        sendable = satellite.storage.backlog_bits
        if sendable <= 0.0:
            return 0.0
        return min(bitrate_bps * step_s, sendable)

    def edge_values(self, profile: FleetQueueProfile, sat_idx: np.ndarray,
                    bitrate_bps: np.ndarray, now: datetime,
                    step_s: float) -> np.ndarray:
        """Vectorized :meth:`edge_value`: deliverable bits per edge."""
        backlog = profile.backlog_of(sat_idx)
        value = np.minimum(bitrate_bps * step_s, backlog)
        return np.where((bitrate_bps > 0.0) & (backlog > 0.0), value, 0.0)


@dataclass(frozen=True)
class PriorityValue:
    """Operator priorities: SLA tiers and geographic urgency.

    Weighs the queue head's ``priority`` field (e.g. disaster imagery
    tagged high) and an optional per-region multiplier, on top of age, so
    urgent data preempts stale-but-ordinary data.
    """

    region_multipliers: dict[str, float] = field(default_factory=dict)
    priority_weight: float = 3600.0  # 1 priority unit == 1 hour of age

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        if bitrate_bps <= 0.0:
            return 0.0
        head = satellite.storage.peek_sendable()
        if head is None:
            return 0.0
        age_s = max(step_s, (now - head.capture_time).total_seconds())
        multiplier = self.region_multipliers.get(head.region, 1.0)
        return multiplier * (age_s + self.priority_weight * head.priority)


@dataclass(frozen=True)
class AuctionValue:
    """Bidding for station time (Sec. 3.1: "bidding for priority access").

    Each satellite operator posts a bid per station (or a default); the
    edge weight is bid x deliverable bits, i.e. what the operator would
    pay for this step.  Stations then naturally prefer the highest-paying
    feasible satellite under stable matching.
    """

    bids: dict[tuple[str, str], float] = field(default_factory=dict)
    default_bid: float = 1.0

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        if bitrate_bps <= 0.0 or satellite.storage.backlog_bits <= 0.0:
            return 0.0
        bid = self.bids.get((satellite.satellite_id, station_id), self.default_bid)
        deliverable = min(bitrate_bps * step_s, satellite.storage.backlog_bits)
        return bid * deliverable


@dataclass(frozen=True)
class CompositeValue:
    """Weighted sum of value functions (e.g. 0.7*latency + 0.3*throughput)."""

    components: tuple[tuple[ValueFunction, float], ...]

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        return sum(
            weight * vf.edge_value(satellite, station_id, bitrate_bps, now, step_s)
            for vf, weight in self.components
        )
