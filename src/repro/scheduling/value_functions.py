"""Value functions Phi(x, t) weighting satellite-station edges.

Sec. 3.1: "for any subset x of X_i and time t elapsed since the capture of
the data, Phi(x, t) denotes the value of transmitting that data to Earth".
The paper gives two canonical instances -- Phi = t to minimize latency and
Phi = |x| to maximize throughput -- and sketches SLA/geography weighting
and bidding.  All four are here, plus composition.

A value function sees the satellite's queue head (what would actually be
sent), the predicted link bitrate, and the step duration, and returns the
edge weight for the matching stage.  Higher = more valuable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Protocol, runtime_checkable

import numpy as np

from repro.satellites.satellite import Satellite

#: Reference instant for integer-microsecond timestamps.  Chunk ages are
#: ``(now_us - capture_us) / 1e6``: the microsecond difference is an exact
#: int64, and dividing it by 1e6 performs the single correctly-rounded
#: float division that ``timedelta.total_seconds()`` performs -- which is
#: what makes the vectorized ages bit-identical to the scalar path.
_US_REF = datetime(2000, 1, 1)


def _microseconds_since_ref(when: datetime) -> int:
    delta = when - _US_REF
    return (delta.days * 86400 + delta.seconds) * 1_000_000 + delta.microseconds


#: Deadline sentinel for untenanted chunks: far enough in the future that
#: the urgency-pressure clip lands on an exact 0.0, matching the scalar
#: path's ``deadline is None`` branch bit for bit.
_NO_DEADLINE_US = 2**62


class FleetQueueProfile:
    """Padded per-satellite send-queue arrays for vectorized edge pricing.

    ``prefix_age_value`` reads three per-chunk fields (remaining bits,
    size, capture time) plus the queue backlog and head size; this cache
    holds them as ``(num_satellites, max_chunks)`` arrays so a value
    function can price every edge of an instant in a handful of numpy
    passes instead of a Python call per pair.  Rows refresh lazily against
    :attr:`OnboardStorage.version`, so between scheduling steps only the
    satellites that actually transmitted, captured, or requeued data are
    re-read.
    """

    def __init__(self, satellites: list[Satellite]):
        self._satellites = satellites
        self._storages = [sat.storage for sat in satellites]
        n = len(satellites)
        self._versions = np.full(n, -1, dtype=np.int64)
        self._cols = 4
        # Demand columns (tenant slot + deadline); allocated lazily by
        # ensure_demand so tenant-free runs pay nothing.
        self._demand_order: tuple[str, ...] | None = None
        self._tenant_lookup: dict[str, int] = {}
        self._tenant_slot: np.ndarray | None = None
        self._deadline_us: np.ndarray | None = None
        self._alloc(n, self._cols)

    def _alloc(self, n: int, cols: int) -> None:
        remaining = np.zeros((n, cols))
        sizes = np.ones((n, cols))
        capture_us = np.zeros((n, cols), dtype=np.int64)
        old = getattr(self, "_remaining", None)
        if old is None:
            self._counts = np.zeros(n, dtype=np.intp)
            self._backlog = np.zeros(n)
            self._head_size = np.zeros(n)
        else:
            # Growing the chunk axis: copy the existing rows.  The new
            # columns hold the padding values (remaining 0, size 1,
            # capture 0), which contribute an exact +0.0 to any prefix
            # evaluation -- so grown rows stay valid and versions are
            # untouched.
            prev = old.shape[1]
            remaining[:, :prev] = old
            sizes[:, :prev] = self._sizes
            capture_us[:, :prev] = self._capture_us
        self._remaining = remaining
        self._sizes = sizes
        self._capture_us = capture_us
        if self._demand_order is not None:
            tenant_slot = np.zeros((n, cols), dtype=np.intp)
            deadline_us = np.full((n, cols), _NO_DEADLINE_US, dtype=np.int64)
            if self._tenant_slot is not None and old is not None:
                prev = self._tenant_slot.shape[1]
                tenant_slot[:, :prev] = self._tenant_slot
                deadline_us[:, :prev] = self._deadline_us
            self._tenant_slot = tenant_slot
            self._deadline_us = deadline_us
        self._cols = cols

    def ensure_demand(self, tenant_order: tuple[str, ...]) -> None:
        """Enable the demand columns (idempotent per tenant ordering).

        Tenant slot 0 is reserved for untenanted chunks; tenant ``k`` of
        ``tenant_order`` occupies slot ``k + 1``.  Enabling (or changing
        the ordering) invalidates every row so the next refresh fills the
        new columns.
        """
        order = tuple(tenant_order)
        if self._demand_order == order:
            return
        self._demand_order = order
        self._tenant_lookup = {tid: k + 1 for k, tid in enumerate(order)}
        n = len(self._satellites)
        self._tenant_slot = np.zeros((n, self._cols), dtype=np.intp)
        self._deadline_us = np.full(
            (n, self._cols), _NO_DEADLINE_US, dtype=np.int64
        )
        self._versions[:] = -1

    def refresh(self, sat_indices) -> None:
        """Re-read queues whose mutation counter moved since last seen."""
        storages = self._storages
        idx = np.asarray(sat_indices)
        idx_l = idx.tolist()
        current = np.fromiter(
            (storages[i].version for i in idx_l), np.int64, count=idx.size
        )
        moved = idx[current != self._versions[idx]]
        for i in moved.tolist():
            storage = storages[i]
            remaining, sizes, captures, backlog, head_size = (
                storage.queue_snapshot()
            )
            count = len(remaining)
            if count > self._cols:
                self._alloc(len(self._satellites), max(count, 2 * self._cols))
            row_r = self._remaining[i]
            row_s = self._sizes[i]
            row_c = self._capture_us[i]
            row_r[:count] = remaining
            row_r[count:] = 0.0
            row_s[:count] = sizes
            row_s[count:] = 1.0
            for c in range(count):
                row_c[c] = _microseconds_since_ref(captures[c])
            row_c[count:] = 0
            if self._tenant_slot is not None:
                tenant_ids, deadlines = storage.queue_demand_snapshot()
                row_t = self._tenant_slot[i]
                row_d = self._deadline_us[i]
                lookup = self._tenant_lookup
                for c in range(count):
                    row_t[c] = lookup.get(tenant_ids[c], 0)
                    deadline = deadlines[c]
                    row_d[c] = (
                        _NO_DEADLINE_US if deadline is None
                        else _microseconds_since_ref(deadline)
                    )
                row_t[count:] = 0
                row_d[count:] = _NO_DEADLINE_US
            self._counts[i] = count
            self._backlog[i] = backlog
            self._head_size[i] = head_size
            self._versions[i] = storage.version

    def prefix_age_values(self, sat_idx: np.ndarray, bits_budgets: np.ndarray,
                          now: datetime) -> np.ndarray:
        """Vectorized :meth:`OnboardStorage.prefix_age_value` per edge.

        ``sat_idx[p]`` is the satellite of edge ``p`` and ``bits_budgets[p]``
        its step budget.  The chunk loop runs sequentially over the (few)
        queue positions and vectorized over edges, performing the same
        elementwise operations in the same order as the scalar loop --
        padded positions contribute an exact ``+0.0``.
        """
        now_us = _microseconds_since_ref(now)
        left = np.maximum(0.0, bits_budgets)
        value = np.zeros(len(left))
        cmax = int(self._counts[sat_idx].max()) if sat_idx.size else 0
        for c in range(cmax):
            remaining = self._remaining[sat_idx, c]
            sendable = np.minimum(remaining, left)
            ages = np.maximum(
                0.0, (now_us - self._capture_us[sat_idx, c]) / 1e6
            )
            value = value + ages * (sendable / self._sizes[sat_idx, c])
            left = left - sendable
            if not left.any():
                # Every edge's budget is exactly exhausted; all further
                # chunks would contribute an exact +0.0.
                break
        return value

    def prefix_deadline_values(self, sat_idx: np.ndarray,
                               bits_budgets: np.ndarray, now: datetime,
                               slot_weights: np.ndarray,
                               urgency_weight_s: float,
                               urgency_horizon_s: float) -> np.ndarray:
        """The :class:`DeadlineSlaValue` prefix kernel, vectorized per edge.

        Same loop structure as :meth:`prefix_age_values`, with each
        chunk's age term scaled by its tenant's (weight x quota factor)
        from ``slot_weights`` and boosted by deadline pressure.  Padded
        positions contribute an exact ``+0.0`` (sendable is 0), and the
        no-deadline sentinel clips pressure to an exact 0.0, so the
        result is bit-identical to the scalar loop.
        """
        if self._tenant_slot is None:
            raise RuntimeError("demand columns not enabled; call ensure_demand")
        now_us = _microseconds_since_ref(now)
        left = np.maximum(0.0, bits_budgets)
        value = np.zeros(len(left))
        cmax = int(self._counts[sat_idx].max()) if sat_idx.size else 0
        for c in range(cmax):
            remaining = self._remaining[sat_idx, c]
            sendable = np.minimum(remaining, left)
            ages = np.maximum(
                0.0, (now_us - self._capture_us[sat_idx, c]) / 1e6
            )
            slack_s = (self._deadline_us[sat_idx, c] - now_us) / 1e6
            pressure = np.minimum(np.maximum(
                (urgency_horizon_s - slack_s) / urgency_horizon_s, 0.0
            ), 2.0)
            weights = slot_weights[self._tenant_slot[sat_idx, c]]
            value = value + weights * (
                ages + urgency_weight_s * pressure
            ) * (sendable / self._sizes[sat_idx, c])
            left = left - sendable
            if not left.any():
                break
        return value

    def backlog_of(self, sat_idx: np.ndarray) -> np.ndarray:
        return self._backlog[sat_idx]

    def head_size_of(self, sat_idx: np.ndarray) -> np.ndarray:
        return self._head_size[sat_idx]

    def counts_of(self, sat_idx: np.ndarray) -> np.ndarray:
        return self._counts[sat_idx]


@runtime_checkable
class ValueFunction(Protocol):
    """Edge-weight oracle for the bipartite matching."""

    def edge_value(
        self,
        satellite: Satellite,
        station_id: str,
        bitrate_bps: float,
        now: datetime,
        step_s: float,
    ) -> float:
        """Value of satellite->station transmitting for one step at this rate."""
        ...


@dataclass(frozen=True)
class LatencyValue:
    """Phi(x, t) = t, summed over the data x the link can move this step.

    Per the paper (Sec. 3.2): "we compute the value corresponding to the
    data that the satellite can send on that link using Phi".  With
    Phi = t, that value is the total age of the queue prefix the link's
    rate can drain during the step -- so both staleness and link rate
    matter, and the matching drains old data over the fastest feasible
    links.
    """

    #: Floor each chunk's age at one step so freshly captured data still
    #: attracts downlink capacity.
    min_age_factor: float = 1.0

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        if bitrate_bps <= 0.0:
            return 0.0
        value = satellite.storage.prefix_age_value(bitrate_bps * step_s, now)
        if value <= 0.0 and satellite.storage.backlog_bits > 0.0:
            # All-new data: value by deliverable volume at a one-step age.
            deliverable = min(bitrate_bps * step_s, satellite.storage.backlog_bits)
            chunk = satellite.storage.peek_sendable()
            size = chunk.size_bits if chunk is not None else deliverable
            value = self.min_age_factor * step_s * deliverable / max(size, 1.0)
        return value

    def edge_values(self, profile: FleetQueueProfile, sat_idx: np.ndarray,
                    bitrate_bps: np.ndarray, now: datetime,
                    step_s: float) -> np.ndarray:
        """Vectorized :meth:`edge_value` over one instant's edges.

        Bit-identical to the scalar method: the prefix-age kernel mirrors
        its loop operation for operation, and the all-new-data fallback is
        the same expression evaluated elementwise.
        """
        budgets = bitrate_bps * step_s
        value = profile.prefix_age_values(sat_idx, budgets, now)
        backlog = profile.backlog_of(sat_idx)
        deliverable = np.minimum(budgets, backlog)
        head_size = np.where(
            profile.counts_of(sat_idx) > 0,
            profile.head_size_of(sat_idx), deliverable,
        )
        fallback = (self.min_age_factor * step_s * deliverable
                    / np.maximum(head_size, 1.0))
        value = np.where((value <= 0.0) & (backlog > 0.0), fallback, value)
        return np.where(bitrate_bps > 0.0, value, 0.0)


@dataclass(frozen=True)
class DeadlineSlaValue:
    """Tenant-priced Phi(x, t): age x tier weight x quota fairness + urgency.

    Sec. 3.1's SLA weighting made concrete.  Each chunk in the sendable
    prefix contributes::

        weight(tenant) * quota_factor(tenant)
            * (age_s + urgency_weight_s * pressure)
            * (sendable / size)

    where ``pressure`` ramps from 0 (more than ``urgency_horizon_s`` of
    SLA slack left) to 2 (a full horizon past the deadline), clipped --
    so a chunk approaching its deadline attracts downlink capacity as if
    it were ``urgency_weight_s`` seconds older, and an over-quota
    tenant's data is discounted by ``over_quota_factor`` until the next
    UTC day restores its quota.  Untenanted chunks price at weight 1
    with no deadline pressure, which makes the function degrade to
    :class:`LatencyValue`-like behavior on legacy data.

    ``edge_values`` is the vectorized fast path; it enables the fleet
    profile's demand columns on first use and is bit-identical to the
    scalar method.
    """

    tenants: tuple = ()
    #: The shared per-run quota ledger (None = no quota discounting).
    #: Excluded from equality: it is mutable run state, not identity.
    accountant: "object | None" = field(default=None, compare=False,
                                        repr=False)
    #: Seconds of effective age one unit of deadline pressure is worth.
    urgency_weight_s: float = 1800.0
    #: Slack window over which pressure ramps toward the deadline.
    urgency_horizon_s: float = 3600.0
    #: Price multiplier on a tenant that exhausted today's quota.
    over_quota_factor: float = 0.25
    #: Floor for the all-new-data fallback (mirrors LatencyValue).
    min_age_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.urgency_horizon_s <= 0.0:
            raise ValueError("urgency_horizon_s must be positive")
        if not 0.0 < self.over_quota_factor <= 1.0:
            raise ValueError("over_quota_factor must be in (0, 1]")
        order = tuple(t.tenant_id for t in self.tenants)
        object.__setattr__(self, "_order", order)
        object.__setattr__(
            self, "_slot", {tid: k + 1 for k, tid in enumerate(order)}
        )
        # Slot 0 = untenanted: weight 1, never quota-limited.
        object.__setattr__(
            self, "_weights",
            np.array([1.0] + [t.weight for t in self.tenants]),
        )

    def _slot_weights(self, now: datetime) -> np.ndarray:
        """Per-slot (tenant weight x today's quota factor)."""
        factors = np.ones(len(self._order) + 1)
        if self.accountant is not None:
            for k, tenant_id in enumerate(self._order):
                if not self.accountant.under_quota(tenant_id, now):
                    factors[k + 1] = self.over_quota_factor
        return self._weights * factors

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        if bitrate_bps <= 0.0:
            return 0.0
        storage = satellite.storage
        weights = self._slot_weights(now)
        now_us = _microseconds_since_ref(now)
        left = bitrate_bps * step_s
        value = 0.0
        for chunk in storage.onboard_chunks:
            if left <= 0.0:
                break
            sendable = min(chunk.remaining_bits, left)
            ages = max(
                0.0,
                (now_us - _microseconds_since_ref(chunk.capture_time)) / 1e6,
            )
            if chunk.deadline is None:
                pressure = 0.0
            else:
                slack_s = (
                    _microseconds_since_ref(chunk.deadline) - now_us
                ) / 1e6
                pressure = min(max(
                    (self.urgency_horizon_s - slack_s)
                    / self.urgency_horizon_s, 0.0
                ), 2.0)
            value = value + weights[self._slot.get(chunk.tenant_id, 0)] * (
                ages + self.urgency_weight_s * pressure
            ) * (sendable / chunk.size_bits)
            left = left - sendable
        if value <= 0.0 and storage.backlog_bits > 0.0:
            # All-new data: value by deliverable volume at a one-step age.
            deliverable = min(bitrate_bps * step_s, storage.backlog_bits)
            chunk = storage.peek_sendable()
            size = chunk.size_bits if chunk is not None else deliverable
            value = self.min_age_factor * step_s * deliverable / max(size, 1.0)
        return value

    def edge_values(self, profile: FleetQueueProfile, sat_idx: np.ndarray,
                    bitrate_bps: np.ndarray, now: datetime,
                    step_s: float) -> np.ndarray:
        """Vectorized :meth:`edge_value` over one instant's edges.

        First use enables the profile's demand columns (invalidating its
        rows), so the extra refresh here re-reads exactly the rows this
        call prices; on later steps it is a version-match no-op.
        """
        profile.ensure_demand(self._order)
        if sat_idx.size:
            run_start = np.empty(sat_idx.size, dtype=bool)
            run_start[0] = True
            np.not_equal(sat_idx[1:], sat_idx[:-1], out=run_start[1:])
            profile.refresh(sat_idx[run_start])
        budgets = bitrate_bps * step_s
        value = profile.prefix_deadline_values(
            sat_idx, budgets, now, self._slot_weights(now),
            self.urgency_weight_s, self.urgency_horizon_s,
        )
        backlog = profile.backlog_of(sat_idx)
        deliverable = np.minimum(budgets, backlog)
        head_size = np.where(
            profile.counts_of(sat_idx) > 0,
            profile.head_size_of(sat_idx), deliverable,
        )
        fallback = (self.min_age_factor * step_s * deliverable
                    / np.maximum(head_size, 1.0))
        value = np.where((value <= 0.0) & (backlog > 0.0), fallback, value)
        return np.where(bitrate_bps > 0.0, value, 0.0)


@dataclass(frozen=True)
class ThroughputValue:
    """Phi(x, t) = |x|: the bits this link can move during the step."""

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        if bitrate_bps <= 0.0:
            return 0.0
        sendable = satellite.storage.backlog_bits
        if sendable <= 0.0:
            return 0.0
        return min(bitrate_bps * step_s, sendable)

    def edge_values(self, profile: FleetQueueProfile, sat_idx: np.ndarray,
                    bitrate_bps: np.ndarray, now: datetime,
                    step_s: float) -> np.ndarray:
        """Vectorized :meth:`edge_value`: deliverable bits per edge."""
        backlog = profile.backlog_of(sat_idx)
        value = np.minimum(bitrate_bps * step_s, backlog)
        return np.where((bitrate_bps > 0.0) & (backlog > 0.0), value, 0.0)


@dataclass(frozen=True)
class PriorityValue:
    """Operator priorities: SLA tiers and geographic urgency.

    Weighs the queue head's ``priority`` field (e.g. disaster imagery
    tagged high) and an optional per-region multiplier, on top of age, so
    urgent data preempts stale-but-ordinary data.
    """

    region_multipliers: dict[str, float] = field(default_factory=dict)
    priority_weight: float = 3600.0  # 1 priority unit == 1 hour of age

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        if bitrate_bps <= 0.0:
            return 0.0
        head = satellite.storage.peek_sendable()
        if head is None:
            return 0.0
        age_s = max(step_s, (now - head.capture_time).total_seconds())
        multiplier = self.region_multipliers.get(head.region, 1.0)
        return multiplier * (age_s + self.priority_weight * head.priority)


@dataclass(frozen=True)
class AuctionValue:
    """Bidding for station time (Sec. 3.1: "bidding for priority access").

    Each satellite operator posts a bid per station (or a default); the
    edge weight is bid x deliverable bits, i.e. what the operator would
    pay for this step.  Stations then naturally prefer the highest-paying
    feasible satellite under stable matching.
    """

    bids: dict[tuple[str, str], float] = field(default_factory=dict)
    default_bid: float = 1.0

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        if bitrate_bps <= 0.0 or satellite.storage.backlog_bits <= 0.0:
            return 0.0
        bid = self.bids.get((satellite.satellite_id, station_id), self.default_bid)
        deliverable = min(bitrate_bps * step_s, satellite.storage.backlog_bits)
        return bid * deliverable


@dataclass(frozen=True)
class CompositeValue:
    """Weighted sum of value functions (e.g. 0.7*latency + 0.3*throughput)."""

    components: tuple[tuple[ValueFunction, float], ...]

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        return sum(
            weight * vf.edge_value(satellite, station_id, bitrate_bps, now, step_s)
            for vf, weight in self.components
        )
