"""Value functions Phi(x, t) weighting satellite-station edges.

Sec. 3.1: "for any subset x of X_i and time t elapsed since the capture of
the data, Phi(x, t) denotes the value of transmitting that data to Earth".
The paper gives two canonical instances -- Phi = t to minimize latency and
Phi = |x| to maximize throughput -- and sketches SLA/geography weighting
and bidding.  All four are here, plus composition.

A value function sees the satellite's queue head (what would actually be
sent), the predicted link bitrate, and the step duration, and returns the
edge weight for the matching stage.  Higher = more valuable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Protocol, runtime_checkable

from repro.satellites.satellite import Satellite


@runtime_checkable
class ValueFunction(Protocol):
    """Edge-weight oracle for the bipartite matching."""

    def edge_value(
        self,
        satellite: Satellite,
        station_id: str,
        bitrate_bps: float,
        now: datetime,
        step_s: float,
    ) -> float:
        """Value of satellite->station transmitting for one step at this rate."""
        ...


@dataclass(frozen=True)
class LatencyValue:
    """Phi(x, t) = t, summed over the data x the link can move this step.

    Per the paper (Sec. 3.2): "we compute the value corresponding to the
    data that the satellite can send on that link using Phi".  With
    Phi = t, that value is the total age of the queue prefix the link's
    rate can drain during the step -- so both staleness and link rate
    matter, and the matching drains old data over the fastest feasible
    links.
    """

    #: Floor each chunk's age at one step so freshly captured data still
    #: attracts downlink capacity.
    min_age_factor: float = 1.0

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        if bitrate_bps <= 0.0:
            return 0.0
        value = satellite.storage.prefix_age_value(bitrate_bps * step_s, now)
        if value <= 0.0 and satellite.storage.backlog_bits > 0.0:
            # All-new data: value by deliverable volume at a one-step age.
            deliverable = min(bitrate_bps * step_s, satellite.storage.backlog_bits)
            chunk = satellite.storage.peek_sendable()
            size = chunk.size_bits if chunk is not None else deliverable
            value = self.min_age_factor * step_s * deliverable / max(size, 1.0)
        return value


@dataclass(frozen=True)
class ThroughputValue:
    """Phi(x, t) = |x|: the bits this link can move during the step."""

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        if bitrate_bps <= 0.0:
            return 0.0
        sendable = satellite.storage.backlog_bits
        if sendable <= 0.0:
            return 0.0
        return min(bitrate_bps * step_s, sendable)


@dataclass(frozen=True)
class PriorityValue:
    """Operator priorities: SLA tiers and geographic urgency.

    Weighs the queue head's ``priority`` field (e.g. disaster imagery
    tagged high) and an optional per-region multiplier, on top of age, so
    urgent data preempts stale-but-ordinary data.
    """

    region_multipliers: dict[str, float] = field(default_factory=dict)
    priority_weight: float = 3600.0  # 1 priority unit == 1 hour of age

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        if bitrate_bps <= 0.0:
            return 0.0
        head = satellite.storage.peek_sendable()
        if head is None:
            return 0.0
        age_s = max(step_s, (now - head.capture_time).total_seconds())
        multiplier = self.region_multipliers.get(head.region, 1.0)
        return multiplier * (age_s + self.priority_weight * head.priority)


@dataclass(frozen=True)
class AuctionValue:
    """Bidding for station time (Sec. 3.1: "bidding for priority access").

    Each satellite operator posts a bid per station (or a default); the
    edge weight is bid x deliverable bits, i.e. what the operator would
    pay for this step.  Stations then naturally prefer the highest-paying
    feasible satellite under stable matching.
    """

    bids: dict[tuple[str, str], float] = field(default_factory=dict)
    default_bid: float = 1.0

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        if bitrate_bps <= 0.0 or satellite.storage.backlog_bits <= 0.0:
            return 0.0
        bid = self.bids.get((satellite.satellite_id, station_id), self.default_bid)
        deliverable = min(bitrate_bps * step_s, satellite.storage.backlog_bits)
        return bid * deliverable


@dataclass(frozen=True)
class CompositeValue:
    """Weighted sum of value functions (e.g. 0.7*latency + 0.3*throughput)."""

    components: tuple[tuple[ValueFunction, float], ...]

    def edge_value(self, satellite: Satellite, station_id: str,
                   bitrate_bps: float, now: datetime, step_s: float) -> float:
        return sum(
            weight * vf.edge_value(satellite, station_id, bitrate_bps, now, step_s)
            for vf, weight in self.components
        )
