"""The DGS downlink scheduler: graph construction + matching, per instant.

"Finally, we run the stable matching algorithm at each time instance to
capture the temporal variation of the links.  We do not optimize for links
across time." (Sec. 3.1.)  The scheduler therefore has no cross-step
state; it rebuilds the contact graph and re-matches at every step, with
the matcher and value function pluggable.

:meth:`DownlinkScheduler.build_plan` rolls the same machinery forward over
a horizon using forecasts *issued now* -- this is the plan a
transmit-capable station uploads to a satellite, and what receive-only
stations receive over the Internet (Sec. 3, Overview).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Literal

import numpy as np

from repro.groundstations.network import GroundStationNetwork
from repro.linkbudget.budget import LinkBudget
from repro.orbits.ephemeris import EphemerisTable
from repro.satellites.satellite import Satellite
from repro.scheduling.culling import StationGrid
from repro.scheduling.graph import (
    ContactGraph,
    GeometryEngine,
    PairGroupCache,
    build_contact_graph,
)
from repro.scheduling.matching import (
    Assignment,
    gale_shapley,
    greedy_matching,
    max_weight_matching,
)
from repro.scheduling.value_functions import (
    FleetQueueProfile,
    LatencyValue,
    ValueFunction,
)
from repro.weather.provider import ClearSkyProvider, WeatherProvider

MatcherName = Literal["stable", "optimal", "greedy"]

_MATCHERS = {
    "stable": gale_shapley,
    "optimal": max_weight_matching,
    "greedy": greedy_matching,
}


@dataclass
class ScheduleStep:
    """The matching chosen for one time instant."""

    when: datetime
    assignments: list[Assignment]
    num_edges: int
    #: The priced contact graph the matching ran on; only retained when
    #: the caller asked (``schedule_step(keep_graph=True)``), e.g. for
    #: diversity-mode secondary-receiver selection.
    graph: "ContactGraph | None" = None

    @property
    def matched_satellites(self) -> set[int]:
        return {a.satellite_index for a in self.assignments}

    def station_for_satellite(self, sat_index: int) -> int | None:
        for a in self.assignments:
            if a.satellite_index == sat_index:
                return a.station_index
        return None


@dataclass
class SatellitePlanEntry:
    """One planned contact in an uplinked schedule.

    Carries everything the spacecraft needs to execute blind: where to
    point (station), when, the committed rate, and the geometry/MODCOD
    context the ground uses to judge decode success.
    """

    start: datetime
    station_index: int
    expected_bitrate_bps: float
    elevation_deg: float = 90.0
    range_km: float = 0.0
    required_esn0_db: float = -100.0


@dataclass
class DownlinkPlan:
    """A horizon plan: per-satellite contact sequences, plus issue metadata."""

    issued_at: datetime
    horizon_s: float
    entries: dict[int, list[SatellitePlanEntry]] = field(default_factory=dict)

    def for_satellite(self, sat_index: int) -> list[SatellitePlanEntry]:
        return self.entries.get(sat_index, [])

    def entry_at(self, sat_index: int, when: datetime,
                 tolerance_s: float = 1.0) -> SatellitePlanEntry | None:
        """The satellite's planned contact starting at ``when``, if any."""
        for entry in self.entries.get(sat_index, []):
            if abs((entry.start - when).total_seconds()) <= tolerance_s:
                return entry
        return None

    def station_targets(self, when: datetime,
                        tolerance_s: float = 1.0) -> dict[int, int]:
        """station_index -> satellite_index the plan points each dish at."""
        targets: dict[int, int] = {}
        for sat_index, entries in self.entries.items():
            for entry in entries:
                if abs((entry.start - when).total_seconds()) <= tolerance_s:
                    targets[entry.station_index] = sat_index
        return targets

    @property
    def covers_until(self) -> datetime:
        return self.issued_at + timedelta(seconds=self.horizon_s)


class _AnticipatedGenerationValue:
    """Planning-time wrapper: price future contacts for data not yet taken.

    When a plan is built at T0, the value functions see the queue as of T0
    -- a satellite with an empty recorder would get no contacts for the
    whole horizon even though it captures continuously.  This wrapper
    falls back, for edges the inner function prices at zero, to the
    imagery the satellite will have *accumulated by that future instant*
    (generation rate x elapsed), discounted below real-backlog value so
    actual data always wins contested stations.
    """

    #: Anticipated data competes below real data: scale its value down.
    DISCOUNT = 0.25

    def __init__(self, inner, issued_at: datetime):
        self.inner = inner
        self.issued_at = issued_at

    def edge_value(self, satellite, station_id: str, bitrate_bps: float,
                   now: datetime, step_s: float) -> float:
        value = self.inner.edge_value(
            satellite, station_id, bitrate_bps, now, step_s
        )
        if value > 0.0 or bitrate_bps <= 0.0:
            return value
        elapsed_s = (now - self.issued_at).total_seconds()
        if elapsed_s <= 0.0:
            return 0.0
        rate_bits_s = satellite.generation_gb_per_day * 8e9 / 86400.0
        anticipated_bits = rate_bits_s * elapsed_s
        if anticipated_bits <= 0.0:
            return 0.0
        deliverable = min(bitrate_bps * step_s, anticipated_bits)
        # Mean age of a continuously-filling queue is elapsed/2; weight it
        # by deliverable volume in chunk-equivalents, matching the units of
        # OnboardStorage.prefix_age_value (age x chunks moved).
        chunk_bits = satellite.chunk_size_gb * 8e9
        return self.DISCOUNT * (elapsed_s / 2.0) * deliverable / chunk_bits


class _StationWeatherMemo:
    """Per-station (rain, cloud) memo keyed on the provider's time bucket.

    A :class:`~repro.weather.provider.QuantizedWeatherCache` returns one
    sample per (station, bucket) no matter how many times it is asked, so
    the per-step oracle loop mostly re-reads values it already has.  This
    memo keeps the last sample per station with a bucket stamp and only
    calls the oracle for stations whose stamp is stale -- issuing exactly
    the first call per (station, bucket) the unmemoized loop would have
    issued, so the provider's cache contents (which capture the first
    ``when`` seen per bucket) and every value consumed downstream are
    bit-identical.  Only valid for nowcast sampling against a provider
    that publishes ``quantize_s``; the scheduler enables it accordingly.
    """

    def __init__(self, num_stations: int, quantize_s: float):
        self.quantize_s = float(quantize_s)
        self._bucket = np.full(num_stations, -1, dtype=np.int64)
        self._rain = np.zeros(num_stations)
        self._cloud = np.zeros(num_stations)
        self._coords: list[tuple[float, float, float, float]] | None = None
        #: Optional direct oracle (e.g. the provider's bound ``sample``):
        #: the scheduler installs it when no instrumentation wrapper is
        #: needed, saving one closure frame and two ``hasattr`` probes
        #: per miss.  Must make the identical underlying call the
        #: ``forecast`` argument would.
        self.oracle = None
        #: The provider itself, when it exposes ``sample_prequantized``
        #: and no instrumentation wrapper is in play: station coordinates
        #: never change, so their cache-key rounding runs once here
        #: instead of twice per sample.
        self.provider = None

    def station_weather(self, network, forecast, gs_idx, when):
        """Full per-station (rain, cloud) arrays, fresh for ``gs_idx``.

        Entries for stations outside ``gs_idx`` may be stale; callers
        only ever gather the involved stations.
        """
        bucket = int(when.timestamp() // self.quantize_s)
        involved = np.zeros(self._bucket.size, dtype=bool)
        involved[gs_idx] = True
        stale = involved & (self._bucket != bucket)
        if self._coords is None:
            self._coords = [
                (round(s.latitude_deg, 3), round(s.longitude_deg, 3),
                 s.latitude_deg, s.longitude_deg)
                for s in network
            ]
        rain_out = self._rain
        cloud_out = self._cloud
        bucket_out = self._bucket
        provider = self.provider
        if provider is not None:
            sample_pq = provider.sample_prequantized
            for j in np.flatnonzero(stale).tolist():
                lat_q, lon_q, lat, lon = self._coords[j]
                sample = sample_pq(lat_q, lon_q, lat, lon, when)
                rain_out[j] = sample.rain_rate_mm_h
                cloud_out[j] = sample.cloud_water_kg_m2
                bucket_out[j] = bucket
            return rain_out, cloud_out
        oracle = self.oracle if self.oracle is not None else forecast
        for j in np.flatnonzero(stale).tolist():
            lat_q, lon_q, lat, lon = self._coords[j]
            sample = oracle(lat, lon, when)
            rain_out[j] = sample.rain_rate_mm_h
            cloud_out[j] = sample.cloud_water_kg_m2
            bucket_out[j] = bucket
        return rain_out, cloud_out


class DownlinkScheduler:
    """Builds contact graphs and matches them, one instant at a time."""

    def __init__(
        self,
        satellites: list[Satellite],
        network: GroundStationNetwork,
        value_function: ValueFunction | None = None,
        matcher: MatcherName = "stable",
        weather: WeatherProvider | None = None,
        step_s: float = 60.0,
        capacities: list[int] | None = None,
        acm_margin_db: float = 1.0,
        require_current_plan: bool = False,
        plan_max_age_s: float = float("inf"),
        station_available=None,
        station_weight=None,
        ephemeris: EphemerisTable | None = None,
        batched: bool = True,
        spatial_culling: bool = True,
        recorder=None,
    ):
        if matcher not in _MATCHERS:
            raise ValueError(f"unknown matcher {matcher!r}; use {sorted(_MATCHERS)}")
        if step_s <= 0:
            raise ValueError("step must be positive")
        self.satellites = satellites
        self.network = network
        self.value_function = value_function or LatencyValue()
        self.matcher_name: MatcherName = matcher
        self.weather = weather or ClearSkyProvider()
        self.step_s = step_s
        self.capacities = capacities
        self.require_current_plan = require_current_plan
        self.plan_max_age_s = plan_max_age_s
        #: Optional (station_index, when) -> bool availability oracle used
        #: to route around announced outages.
        self.station_available = station_available
        #: Optional (station_index, when) -> float availability weight from
        #: the fault layer: edge weights are scaled by it, and a factor
        #: <= 0 prunes the station from the graph.
        self.station_weight = station_weight
        #: Precomputed fleet positions for on-grid instants (shared across
        #: variants via :func:`repro.orbits.ephemeris.shared_ephemeris_table`);
        #: off-grid instants fall back to per-satellite propagation.
        self.ephemeris = ephemeris
        #: ``False`` selects the scalar per-pair reference path (used by
        #: the batch-vs-scalar equivalence harness).
        self.batched = batched
        #: Coarse-grid candidate prefilter (batched path only): per-step
        #: cost tracks candidate pairs instead of M x N, with bit-identical
        #: graphs (the prefilter is a conservative superset).  Lazily
        #: built so non-batched/scalar schedulers pay nothing.
        self._culling_grid: StationGrid | None = None
        if spatial_culling and batched:
            self._culling_grid = StationGrid(network)
        #: Fleet-wide send-queue snapshot for vectorized edge pricing
        #: (batched path only); rows invalidate via the storage version
        #: counter, so steady-state refreshes touch only mutated queues.
        self._queue_profile = FleetQueueProfile(satellites) if batched else None
        #: Observability sink for graph-build/matching spans and counters;
        #: the shared no-op recorder unless the engine passed a live one.
        from repro.obs.recorder import NULL_RECORDER

        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._geometry = GeometryEngine(network)
        self._budgets: dict[tuple[int, int], LinkBudget] = {}
        self._acm_margin_db = acm_margin_db
        self._pair_groups = PairGroupCache(len(satellites), len(network))
        #: Precomputed pass structure
        #: (:class:`repro.scheduling.windows.ContactWindowIndex`), set by
        #: the engine after construction.  When it covers ``when``, the
        #: graph build reads active pairs from it instead of running
        #: candidate generation; off-grid instants fall back to culling.
        self.window_index = None
        #: Per-pass-segment gather cache for the window path (station
        #: scalars + hardware-class ids, reused between rise/set ticks).
        self._window_state: dict = {}
        #: Lazily-built per-station weather memo (nowcast path only).
        self._weather_memo: _StationWeatherMemo | None = None

    # -- link budget cache ---------------------------------------------------

    def _link_budget_for(self, sat: Satellite, station_index: int) -> LinkBudget:
        key = (id(sat.radio), station_index)
        budget = self._budgets.get(key)
        if budget is None:
            budget = LinkBudget(
                radio=sat.radio,
                receiver=self.network[station_index].receiver,
                acm_margin_db=self._acm_margin_db,
            )
            self._budgets[key] = budget
        return budget

    # -- one instant -----------------------------------------------------------

    def contact_graph(self, when: datetime,
                      forecast_issued_at: datetime | None = None) -> ContactGraph:
        """The weighted bipartite graph at ``when``.

        With ``forecast_issued_at`` set, weather is what a forecast issued
        then would predict (plan building); otherwise it is a nowcast.
        """
        def forecast_fn(lat: float, lon: float, valid_at: datetime):
            provider = self.weather
            if forecast_issued_at is not None and hasattr(provider, "forecast"):
                return provider.forecast(lat, lon, forecast_issued_at, valid_at)
            if hasattr(provider, "sample"):
                return provider.sample(lat, lon, valid_at)
            return provider.forecast(lat, lon, valid_at, valid_at)

        if self.recorder.enabled:
            # Account weather-oracle time separately: it runs inside the
            # graph-build span but is a distinct stage of the taxonomy.
            import time as _time

            inner_fn = forecast_fn

            def forecast_fn(lat: float, lon: float, valid_at: datetime):
                t0 = _time.perf_counter()
                try:
                    return inner_fn(lat, lon, valid_at)
                finally:
                    self.recorder.add_time(
                        "weather_sampling", _time.perf_counter() - t0
                    )
                    self.recorder.counter("weather_samples")

        # A provider that is identically clear lets the pricing kernel
        # skip the per-station weather oracle loop outright.
        forecast_fn.always_clear = getattr(self.weather, "always_clear", False)

        # Nowcast sampling against a quantized provider: reuse samples
        # within one provider bucket (bit-identical values; see
        # _StationWeatherMemo).  Forecast-mode pricing bypasses the memo
        # -- its samples depend on the issue time, not just the bucket.
        weather_memo = None
        if (
            self.window_index is not None
            and forecast_issued_at is None
            and not forecast_fn.always_clear
        ):
            quantize_s = getattr(self.weather, "quantize_s", None)
            if quantize_s:
                if self._weather_memo is None:
                    self._weather_memo = _StationWeatherMemo(
                        len(self.network), quantize_s
                    )
                weather_memo = self._weather_memo
                # With no instrumentation wrapper in play the memo may
                # call the provider directly -- same call, fewer frames.
                direct = not self.recorder.enabled
                weather_memo.oracle = self.weather.sample if direct else None
                weather_memo.provider = (
                    self.weather
                    if direct
                    and hasattr(self.weather, "sample_prequantized")
                    else None
                )

        return build_contact_graph(
            satellites=self.satellites,
            network=self.network,
            when=when,
            value_function=self.value_function,
            link_budget_for=self._link_budget_for,
            forecast=forecast_fn,
            step_s=self.step_s,
            geometry=self._geometry,
            require_current_plan=self.require_current_plan,
            plan_max_age_s=self.plan_max_age_s,
            station_available=self.station_available,
            station_weight=self.station_weight,
            ephemeris=self.ephemeris,
            batched=self.batched,
            pair_groups=self._pair_groups,
            culling=self._culling_grid,
            queue_profile=self._queue_profile,
            recorder=self.recorder,
            window_index=self.window_index,
            window_state=self._window_state,
            weather_memo=weather_memo,
        )

    def visibility(
        self, when: datetime
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(elevation, range, visible) matrices at ``when``, using the
        shared ephemeris table when it covers the instant."""
        sat_ecef = None
        if self.ephemeris is not None:
            sat_ecef = self.ephemeris.positions_ecef(when)
        return self._geometry.visibility(
            self.satellites, when, sat_ecef=sat_ecef
        )

    def schedule_step(self, when: datetime,
                      forecast_issued_at: datetime | None = None,
                      keep_graph: bool = False) -> ScheduleStep:
        """Match the contact graph at ``when``.

        ``keep_graph=True`` retains the priced graph on the returned step
        (diversity mode reuses it to pick secondary receivers without a
        second graph build); the matching itself is unaffected.
        """
        rec = self.recorder
        with rec.span("graph_build"):
            graph = self.contact_graph(when, forecast_issued_at)
        matcher = _MATCHERS[self.matcher_name]
        with rec.span("matching"):
            assignments = matcher(graph, self.capacities)
        if rec.enabled:
            rec.counter("contact_edges", graph.num_edges)
            rec.counter("assignments", len(assignments))
        return ScheduleStep(
            when=when, assignments=assignments, num_edges=graph.num_edges,
            graph=graph if keep_graph else None,
        )

    # -- horizon plans ------------------------------------------------------------

    def build_plan(self, issued_at: datetime, horizon_s: float) -> DownlinkPlan:
        """Roll the scheduler over a horizon with forecasts issued now.

        This is the artifact a transmit-capable station uploads: for each
        satellite, the timed sequence of stations to dump to.  Note the
        plan uses *forecast* weather -- by the time a contact actually
        happens the truth may differ, which is exactly the robustness
        question the hybrid design raises.

        Edge pricing anticipates data generation: a satellite whose queue
        is empty *now* will have accumulated imagery by a contact an hour
        into the horizon, so the plan books stations for it anyway
        (at lower priority than real backlog).
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        planning_value = _AnticipatedGenerationValue(
            self.value_function, issued_at
        )
        original_value = self.value_function
        plan = DownlinkPlan(issued_at=issued_at, horizon_s=horizon_s)
        steps = int(horizon_s // self.step_s)
        try:
            self.value_function = planning_value
            for k in range(steps):
                when = issued_at + timedelta(seconds=k * self.step_s)
                step = self.schedule_step(when, forecast_issued_at=issued_at)
                self._append_plan_entries(plan, step, when)
        finally:
            self.value_function = original_value
        return plan

    def _append_plan_entries(self, plan: DownlinkPlan, step: "ScheduleStep",
                             when: datetime) -> None:
        for a in step.assignments:
            plan.entries.setdefault(a.satellite_index, []).append(
                SatellitePlanEntry(
                    start=when,
                    station_index=a.station_index,
                    expected_bitrate_bps=a.bitrate_bps,
                    elevation_deg=a.elevation_deg,
                    range_km=a.range_km,
                    required_esn0_db=a.required_esn0_db,
                )
            )
