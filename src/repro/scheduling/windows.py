"""Contact-window interval index: precomputed pass structure for the loop.

The paper's core observation (Sec. 2) is that LEO contact structure is
sparse and piecewise-constant: a pass lasts seven to ten minutes and a
satellite sees a given station only two-to-three times a day.  Yet the
per-step loop re-derives visibility from scratch every tick -- culling
cosine math, elevation prescreen -- even on ticks where nothing rises or
sets.  :class:`ContactWindowIndex` computes the pass structure **once**
per run: a single chronological scan over the shared
:class:`~repro.orbits.ephemeris.EphemerisTable` evaluates the same
candidate-generation + exact elevation-mask test the per-step path runs
(:meth:`StationGrid.candidate_pairs` + :func:`_pair_visibility`, or the
dense :meth:`GeometryEngine.visibility` when culling is off), and stores
the visible pairs of every step as CSR arrays:

* ``step_ptr[k]:step_ptr[k+1]`` slices the flat per-pair arrays
  (``pair_sat``/``pair_gs``/``pair_elevation``/``pair_range``) for step
  ``k``, in the row-major (satellite, station) order every graph path
  emits.  A tick answers "which pairs are in a pass right now" with two
  pointer reads -- O(active pairs), zero geometry.
* Runs of consecutive steps per (sat, station) pair become **half-open**
  interval records ``[rise_step, set_step)`` -- the
  :class:`~repro.orbits.passes.ContactWindow` boundary contract, so a
  set landing exactly on a tick is never double-counted.
* ``boundary[k]`` flags ticks where some pair rises or sets; between
  boundaries the edge *topology* is constant, so per-pair gathers
  (station latitude/altitude, hardware-class ids) are reused and only
  weights/values/ACM are re-evaluated.

Because the stored elevations/ranges are produced by bit-identical
arithmetic on the same ephemeris rows, driving the scheduling loop from
the index yields byte-identical reports to the culled and dense paths --
the contract ``tests/scheduling/test_windows_equivalence.py`` pins.

The scan iterates steps chronologically, which is exactly the access
pattern :class:`~repro.orbits.ephemeris.StreamingEphemerisTable` is
built for (PR 6): each ephemeris window is materialized once, used for
its chunk of steps, and evicted -- float32 tables work unchanged, since
per-pair geometry promotes to float64 identically to the per-step path.

The scalar :class:`~repro.orbits.passes.PassPredictor` is the
sub-second-precision reference for a single (satellite, site) pair; its
bisected rise/set times always bracket this index's step-sampled
intervals (pinned by ``tests/scheduling/test_windows.py``).
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np

from repro.groundstations.network import GroundStationNetwork
from repro.linkbudget.budget import KernelStatics
from repro.orbits.passes import ContactWindow
from repro.satellites.satellite import Satellite
from repro.scheduling.graph import (
    GeometryEngine,
    _budget_group_id,
    _pair_visibility,
)

#: Above this many stored (pair, step) rows the per-class kernel statics
#: (six float64 columns each) stop being precomputed -- mega-scale
#: builds keep the index itself but fall back to per-step fspl/gas.
_KERNEL_STATICS_MAX_ROWS = 50_000_000

#: Scan-chunk bounds: stacked (step, satellite) rows per culled chunk,
#: and stacked (step, satellite) x station cells per dense chunk (the
#: dense path materializes the full matrix, so it is bounded by the
#: product rather than the row count).
_SCAN_CHUNK_ROWS = 200_000
_SCAN_CHUNK_CELLS = 4_000_000

__all__ = [
    "ContactWindowIndex",
    "shared_window_index",
    "clear_window_index_cache",
]


class ContactWindowIndex:
    """CSR pass-window index over a fixed step grid.

    Construct via :meth:`build`; query with :meth:`step_of` +
    :meth:`pairs_at`.  All per-pair arrays are immutable after build and
    shared (sliced, never copied) with the per-step consumers.
    """

    def __init__(
        self,
        start: datetime,
        step_s: float,
        num_steps: int,
        num_satellites: int,
        num_stations: int,
        step_ptr: np.ndarray,
        pair_sat: np.ndarray,
        pair_gs: np.ndarray,
        pair_elevation: np.ndarray,
        pair_range: np.ndarray,
        window_sat: np.ndarray,
        window_gs: np.ndarray,
        window_rise_step: np.ndarray,
        window_set_step: np.ndarray,
        boundary: np.ndarray,
    ):
        self.start = start
        self.step_s = float(step_s)
        self.num_steps = int(num_steps)
        self.num_satellites = int(num_satellites)
        self.num_stations = int(num_stations)
        self.step_ptr = step_ptr
        self.pair_sat = pair_sat
        self.pair_gs = pair_gs
        self.pair_elevation = pair_elevation
        self.pair_range = pair_range
        #: One record per pass: pair endpoints and half-open step span
        #: ``[rise_step, set_step)`` (the pair is visible at every step in
        #: the span and at neither endpoint's outside neighbour).
        self.window_sat = window_sat
        self.window_gs = window_gs
        self.window_rise_step = window_rise_step
        self.window_set_step = window_set_step
        #: ``boundary[k]`` is True when the visible-pair set at ``k``
        #: differs from step ``k - 1`` (some pass rose or set).
        self.boundary = boundary
        #: Monotone segment label: constant between boundaries, so two
        #: steps share a label iff their pair sets are identical.
        self._segment = np.cumsum(boundary.astype(np.int64))
        #: Per-hardware-class geometry-only kernel terms, aligned with the
        #: CSR pair arrays (filled by :meth:`build` when the class count
        #: is small; see :meth:`kernel_statics_at`).
        self._kernel_statics: dict[int, KernelStatics] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        satellites: list[Satellite],
        network: GroundStationNetwork,
        *,
        start: datetime,
        num_steps: int,
        step_s: float,
        geometry: GeometryEngine | None = None,
        ephemeris=None,
        culling=None,
        link_budget_for=None,
        pair_groups=None,
        recorder=None,
    ) -> "ContactWindowIndex":
        """One-shot chronological scan producing the full index.

        Runs the *same* candidate generation and exact elevation test as
        the per-step graph paths, step by step in time order (streaming
        ephemeris windows are touched once each).  ``link_budget_for`` +
        ``pair_groups`` optionally pre-resolve the hardware-class id of
        every pair that is ever visible, moving the per-pair budget
        lookups out of the hot loop entirely.
        """
        if geometry is None:
            geometry = GeometryEngine(network)
        num_sats = len(satellites)
        num_stations = len(network)
        counts = np.zeros(num_steps + 1, dtype=np.int64)
        step_sats: list[np.ndarray] = []
        step_gs: list[np.ndarray] = []
        step_elev: list[np.ndarray] = []
        step_rng: list[np.ndarray] = []
        # Chunk the chronological scan: stacking S steps of fleet
        # positions into one (S*M, 3) block treats (step, satellite) as a
        # single row axis, so the culling matmul and the exact elevation
        # test each run once per chunk instead of once per step.  Per-row
        # arithmetic is unchanged -- candidate refinement is exact per
        # row and the visibility test is elementwise -- so the per-step
        # slices are bit-identical to a step-at-a-time scan.  The dense
        # path materializes an (S*M, N) matrix, so its chunk shrinks to
        # keep that allocation bounded; culled scans cap only on rows.
        if culling is not None:
            chunk = max(1, min(32, _SCAN_CHUNK_ROWS // max(1, num_sats)))
        else:
            cells = max(1, num_sats * num_stations)
            chunk = max(1, min(32, _SCAN_CHUNK_CELLS // cells))
        for c0 in range(0, num_steps, chunk):
            c1 = min(c0 + chunk, num_steps)
            blocks = []
            for k in range(c0, c1):
                when = start + timedelta(seconds=k * step_s)
                if ephemeris is not None:
                    block = np.asarray(
                        ephemeris.positions_ecef(when), dtype=float
                    )
                else:
                    block = geometry.satellite_ecef(satellites, when)
                blocks.append(block)
            stacked = np.concatenate(blocks, axis=0)
            span = c1 - c0
            if culling is not None:
                cand_sat, cand_gs = culling.candidate_pairs(stacked)
                elev, rng, vis = _pair_visibility(
                    geometry, stacked, cand_sat, cand_gs
                )
                sel = np.nonzero(vis)[0]
                glob = cand_sat[sel]
                g_all = cand_gs[sel].astype(np.int32)
            else:
                elevation, rng_km, visible = geometry.visibility(
                    satellites, start, sat_ecef=stacked
                )
                glob, gi = np.nonzero(visible)
                g_all = gi.astype(np.int32)
                elev = elevation[glob, gi]
                rng = rng_km[glob, gi]
                sel = slice(None)
            e_all = elev[sel]
            r_all = rng[sel]
            # Rows arrive (step, sat, station)-ordered; split per step.
            krow = glob // num_sats
            s_all = (glob - krow * num_sats).astype(np.int32)
            bounds = np.searchsorted(krow, np.arange(span + 1))
            for si in range(span):
                lo, hi = int(bounds[si]), int(bounds[si + 1])
                counts[c0 + si + 1] = hi - lo
                step_sats.append(s_all[lo:hi])
                step_gs.append(g_all[lo:hi])
                step_elev.append(e_all[lo:hi])
                step_rng.append(r_all[lo:hi])

        step_ptr = np.cumsum(counts)
        total = int(step_ptr[-1])
        pair_sat = (
            np.concatenate(step_sats) if total else np.empty(0, np.int32)
        )
        pair_gs = (
            np.concatenate(step_gs) if total else np.empty(0, np.int32)
        )
        pair_elevation = (
            np.concatenate(step_elev) if total else np.empty(0, float)
        )
        pair_range = (
            np.concatenate(step_rng) if total else np.empty(0, float)
        )

        # Interval extraction: sort entries by (pair, step); a pass is a
        # maximal run of consecutive steps of one pair.  Half-open spans:
        # set_step is one past the last visible step.
        if total:
            entry_step = np.repeat(
                np.arange(num_steps, dtype=np.int64), np.diff(step_ptr)
            )
            key = pair_sat.astype(np.int64) * num_stations + pair_gs
            # Single-key argsort instead of a two-key lexsort: a pair
            # appears at most once per step, so ``key * num_steps + step``
            # is unique and sorts in the identical (pair, step) order.
            combined = key * num_steps + entry_step
            if num_sats * num_stations * num_steps < 2**31:
                combined = combined.astype(np.int32)
            order = np.argsort(combined)
            k_sorted = key[order]
            t_sorted = entry_step[order]
            new_run = np.empty(total, dtype=bool)
            new_run[0] = True
            new_run[1:] = (k_sorted[1:] != k_sorted[:-1]) | (
                t_sorted[1:] != t_sorted[:-1] + 1
            )
            run_starts = np.flatnonzero(new_run)
            run_ends = np.append(run_starts[1:], total) - 1
            w_key = k_sorted[run_starts]
            window_sat = (w_key // num_stations).astype(np.int32)
            window_gs = (w_key % num_stations).astype(np.int32)
            window_rise = t_sorted[run_starts].astype(np.int32)
            window_set = (t_sorted[run_ends] + 1).astype(np.int32)
        else:
            window_sat = np.empty(0, np.int32)
            window_gs = np.empty(0, np.int32)
            window_rise = np.empty(0, np.int32)
            window_set = np.empty(0, np.int32)

        boundary = np.zeros(num_steps, dtype=bool)
        if num_steps:
            boundary[0] = True
            boundary[window_rise] = True
            sets_inside = window_set[window_set < num_steps]
            boundary[sets_inside] = True

        # Pre-resolve the hardware class of every pair that ever appears:
        # the per-step pricing path then never runs its per-pair budget
        # resolution loop (budget assignment is time-invariant).
        kernel_statics: dict[int, KernelStatics] = {}
        if link_budget_for is not None and pair_groups is not None:
            gids_present = _preresolve_pair_groups(
                window_sat, window_gs,
                satellites, link_budget_for, pair_groups,
            )
            # Free-space loss, gaseous attenuation, the cloud model's
            # elevation sine, and the rain model's slant-path geometry
            # depend only on stored geometry (plus the class's radio
            # frequency): evaluate them once here so the per-step kernel
            # subtracts precomputed columns instead of recomputing
            # transcendentals every tick.  Bounded to a handful of
            # classes so memory stays ~6 columns per class.
            if 0 < len(gids_present) <= 4 and \
                    0 < total <= _KERNEL_STATICS_MAX_ROWS:
                for gid in sorted(gids_present):
                    kernel_statics[gid] = pair_groups.budget_of[
                        gid
                    ].precompute_statics(
                        pair_range,
                        pair_elevation,
                        geometry._station_lat_deg[pair_gs],
                        geometry._station_alt_km[pair_gs],
                    )

        if recorder is not None and recorder.enabled:
            recorder.counter("window_index_pair_steps", total)
            recorder.counter("window_index_windows", int(window_sat.size))

        index = cls(
            start=start,
            step_s=step_s,
            num_steps=num_steps,
            num_satellites=num_sats,
            num_stations=num_stations,
            step_ptr=step_ptr,
            pair_sat=pair_sat,
            pair_gs=pair_gs,
            pair_elevation=pair_elevation,
            pair_range=pair_range,
            window_sat=window_sat,
            window_gs=window_gs,
            window_rise_step=window_rise,
            window_set_step=window_set,
            boundary=boundary,
        )
        index._kernel_statics = kernel_statics
        return index

    # -- per-step queries ------------------------------------------------

    def step_of(self, when: datetime) -> int | None:
        """Grid step index of ``when``, or ``None`` when off-grid.

        The index only answers for instants exactly on its step grid;
        off-grid callers must fall back to direct geometry.
        """
        delta = (when - self.start).total_seconds()
        k = delta / self.step_s
        ki = int(round(k))
        if abs(k - ki) > 1e-6 or not 0 <= ki < self.num_steps:
            return None
        return ki

    def pairs_at(
        self, k: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Visible ``(sat, gs, elevation_deg, range_km)`` views at step ``k``.

        Zero-copy slices of the CSR arrays, row-major by (sat, station) --
        the exact pair set and values the per-step elevation-mask test
        produces at this instant.
        """
        lo = self.step_ptr[k]
        hi = self.step_ptr[k + 1]
        return (
            self.pair_sat[lo:hi],
            self.pair_gs[lo:hi],
            self.pair_elevation[lo:hi],
            self.pair_range[lo:hi],
        )

    def active_count(self, k: int) -> int:
        """Number of pairs in a pass at step ``k`` (two pointer reads)."""
        return int(self.step_ptr[k + 1] - self.step_ptr[k])

    def kernel_statics_at(self, k: int) -> dict[int, KernelStatics] | None:
        """Per-class geometry kernel terms sliced to step ``k`` (views).

        Maps hardware-class gid to the
        :class:`~repro.linkbudget.budget.KernelStatics` columns aligned
        with :meth:`pairs_at`'s rows, or ``None`` when the build skipped
        precomputation (no budget resolver, too many classes, or a
        mega-scale index).  The stored values are the exact outputs of
        the batch fspl/gas/sine helpers on the stored geometry, so
        feeding them to :meth:`LinkBudget.evaluate_batch` is
        bit-identical to recomputing them in-step.
        """
        if not self._kernel_statics:
            return None
        lo = self.step_ptr[k]
        hi = self.step_ptr[k + 1]
        return {
            gid: st.narrow(lo, hi)
            for gid, st in self._kernel_statics.items()
        }

    def segment_id(self, k: int) -> int:
        """Label constant between rise/set boundaries.

        Two steps share a label iff their visible-pair sets (and order)
        are identical, which is what makes cached per-pair gathers safe
        to reuse across the segment.
        """
        return int(self._segment[k])

    @property
    def num_windows(self) -> int:
        return int(self.window_sat.size)

    # -- pass-level queries ----------------------------------------------

    def windows_for(self, sat_index: int, gs_index: int) -> list[ContactWindow]:
        """Step-sampled :class:`ContactWindow` records for one pair.

        ``rise_time``/``set_time`` are grid instants (half-open:
        ``set_time`` is the first step *below* the mask), so the scalar
        :class:`~repro.orbits.passes.PassPredictor`'s sub-second crossing
        times always bracket them: ``predictor_rise <= rise_time`` and
        ``set_time <= predictor_set + step_s``.
        """
        mine = np.nonzero(
            (self.window_sat == sat_index) & (self.window_gs == gs_index)
        )[0]
        key = sat_index * self.num_stations + gs_index
        out: list[ContactWindow] = []
        for w in mine.tolist():
            rise = int(self.window_rise_step[w])
            set_ = int(self.window_set_step[w])
            best_elev = -90.0
            best_step = rise
            for k in range(rise, set_):
                lo = int(self.step_ptr[k])
                hi = int(self.step_ptr[k + 1])
                keys = (
                    self.pair_sat[lo:hi].astype(np.int64) * self.num_stations
                    + self.pair_gs[lo:hi]
                )
                p = int(np.searchsorted(keys, key))
                elev = float(self.pair_elevation[lo + p])
                if elev > best_elev:
                    best_elev = elev
                    best_step = k
            out.append(
                ContactWindow(
                    rise_time=self.start + timedelta(seconds=rise * self.step_s),
                    set_time=self.start + timedelta(seconds=set_ * self.step_s),
                    culmination_time=self.start
                    + timedelta(seconds=best_step * self.step_s),
                    max_elevation_deg=best_elev,
                )
            )
        return out


# --------------------------------------------------------------------------
# Session-scoped index cache, mirroring
# :func:`repro.orbits.ephemeris.shared_ephemeris_table`: fig3a/3b/3c
# sweeps, scheduler-service sessions, and ablations over one scenario
# population rebuild the Simulation but re-derive the identical pass
# structure, so the scan runs once per population and later builds are a
# dictionary hit.  Soundness: the index content is a pure function of
# the ephemeris table (keyed by object -- the ephemeris cache already
# interns tables by TLE set / start / step / dtype), the station
# geometry + mask fingerprint, and the step grid; hardware-class ids
# are interned process-wide, so cached kernel statics stay valid (a
# scheduler whose classes differ simply misses the statics dict and
# recomputes in-step).
# --------------------------------------------------------------------------

#: Cached entries hold a strong reference to their ephemeris table, so a
#: table id in a live key can never be a reused address.
_INDEX_CACHE: dict[tuple, tuple[object, "ContactWindowIndex"]] = {}
_INDEX_CACHE_MAX = 4


def _preresolve_pair_groups(
    window_sat: np.ndarray,
    window_gs: np.ndarray,
    satellites: list[Satellite],
    link_budget_for,
    pair_groups,
) -> set[int]:
    """Resolve the hardware class of every pair that ever has a pass.

    The assignments :func:`repro.scheduling.graph._price_pairs` would
    make lazily on each pair's first priced tick, done up front so the
    hot loop never runs its per-pair resolution branch.  A budget's
    class key is pure value -- ``(radio, receiver, margins)`` -- so
    satellites sharing a value-identical :class:`RadioConfig` resolve to
    the same class at every station; resolution runs once per (radio
    class, station with a pass) and fills whole grid columns.  Returns
    the class ids present among the window pairs.
    """
    gid_grid = pair_groups.gid
    pass_stations = np.unique(window_gs).tolist()
    radio_rows: dict = {}
    for i, sat in enumerate(satellites):
        radio_rows.setdefault(sat.radio, []).append(i)
    for rows in radio_rows.values():
        rep = satellites[rows[0]]
        rows_arr = np.asarray(rows)
        for j in pass_stations:
            budget = link_budget_for(rep, j)
            gid = _budget_group_id(budget)
            pair_groups.budget_of.setdefault(gid, budget)
            gid_grid[rows_arr, j] = gid
    if window_sat.size:
        gids = np.unique(gid_grid[window_sat, window_gs])
        return set(int(g) for g in gids)
    return set()


def _geometry_fingerprint(geometry: GeometryEngine) -> tuple:
    """Byte-level identity of everything geometry feeds the scan."""
    return (
        geometry._station_ecef.tobytes(),
        geometry._min_elevation.tobytes(),
        geometry._can_transmit.tobytes(),
        geometry._station_lat_deg.tobytes(),
        geometry._station_alt_km.tobytes(),
    )


def shared_window_index(
    satellites: list[Satellite],
    network: GroundStationNetwork,
    *,
    start: datetime,
    num_steps: int,
    step_s: float,
    geometry: GeometryEngine | None = None,
    ephemeris=None,
    culling=None,
    link_budget_for=None,
    pair_groups=None,
    recorder=None,
) -> ContactWindowIndex:
    """Fetch (or build) the contact-window index from the session cache.

    Same signature and result as :meth:`ContactWindowIndex.build`; a hit
    skips the chronological scan entirely and only replays the pair
    hardware-class pre-resolution (a per-scheduler side effect) against
    the caller's ``pair_groups``.  ``recorder`` receives
    ``window_index_cache/memory_hit`` / ``build`` counters.
    """
    key = None
    if ephemeris is not None and geometry is not None:
        key = (
            id(ephemeris),
            start,
            int(num_steps),
            float(step_s),
            culling is not None,
            _geometry_fingerprint(geometry),
        )
        entry = _INDEX_CACHE.get(key)
        if entry is not None and entry[0] is ephemeris:
            index = entry[1]
            if link_budget_for is not None and pair_groups is not None:
                # The index is shared; class resolution is a side effect
                # on *this* scheduler's PairGroupCache, so redo it (same
                # assignments the lazy per-tick path would make).
                _preresolve_pair_groups(
                    index.window_sat, index.window_gs,
                    satellites, link_budget_for, pair_groups,
                )
            if recorder is not None and recorder.enabled:
                recorder.counter("window_index_cache/memory_hit")
            return index
    index = ContactWindowIndex.build(
        satellites,
        network,
        start=start,
        num_steps=num_steps,
        step_s=step_s,
        geometry=geometry,
        ephemeris=ephemeris,
        culling=culling,
        link_budget_for=link_budget_for,
        pair_groups=pair_groups,
        recorder=recorder,
    )
    if recorder is not None and recorder.enabled:
        recorder.counter("window_index_cache/build")
    if key is not None:
        while len(_INDEX_CACHE) >= _INDEX_CACHE_MAX:
            _INDEX_CACHE.pop(next(iter(_INDEX_CACHE)))
        _INDEX_CACHE[key] = (ephemeris, index)
    return index


def clear_window_index_cache() -> None:
    """Drop all cached indexes (tests and benchmarks use this)."""
    _INDEX_CACHE.clear()
