"""Antenna pointing schedules: from downlink plans to rotator commands.

A receive-only station executes its share of the plan by driving its
azimuth/elevation rotator along the predicted satellite track (SatNOGS
stations do exactly this).  This module turns a
:class:`~repro.scheduling.scheduler.DownlinkPlan` into per-station
pointing tracks -- timed (azimuth, elevation) samples plus the Doppler
profile the receiver should pre-tune along -- and checks rotator
feasibility (slew-rate limits across the pass, including the
azimuth-wrap problem on near-overhead passes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from datetime import datetime, timedelta

from repro.orbits.frames import teme_to_ecef
from repro.orbits.timebase import datetime_to_jd
from repro.orbits.topocentric import look_angles
from repro.satellites.satellite import Satellite


@dataclass(frozen=True)
class PointingSample:
    """One rotator command point."""

    when: datetime
    azimuth_deg: float
    elevation_deg: float
    doppler_hz: float = 0.0


@dataclass
class PointingTrack:
    """A station's track for one scheduled contact."""

    station_index: int
    satellite_index: int
    samples: list[PointingSample] = field(default_factory=list)

    @property
    def start(self) -> datetime:
        return self.samples[0].when

    @property
    def end(self) -> datetime:
        return self.samples[-1].when

    def max_azimuth_rate_deg_s(self) -> float:
        """Peak azimuth slew rate, unwrapping the 0/360 crossing."""
        peak = 0.0
        for a, b in zip(self.samples, self.samples[1:]):
            dt = (b.when - a.when).total_seconds()
            if dt <= 0:
                continue
            delta = (b.azimuth_deg - a.azimuth_deg + 540.0) % 360.0 - 180.0
            peak = max(peak, abs(delta) / dt)
        return peak

    def max_elevation_rate_deg_s(self) -> float:
        peak = 0.0
        for a, b in zip(self.samples, self.samples[1:]):
            dt = (b.when - a.when).total_seconds()
            if dt <= 0:
                continue
            peak = max(peak, abs(b.elevation_deg - a.elevation_deg) / dt)
        return peak

    def feasible_for(self, max_rate_deg_s: float) -> bool:
        """Whether a rotator with this slew limit can follow the track."""
        if max_rate_deg_s <= 0:
            raise ValueError("slew limit must be positive")
        return (self.max_azimuth_rate_deg_s() <= max_rate_deg_s
                and self.max_elevation_rate_deg_s() <= max_rate_deg_s)


def pointing_tracks(
    plan,
    satellites: list[Satellite],
    network,
    sample_s: float = 10.0,
    carrier_hz: float | None = None,
) -> dict[int, list[PointingTrack]]:
    """Per-station pointing tracks for every contact in a plan.

    Consecutive plan entries of the same (satellite, station) pair merge
    into one track, sampled every ``sample_s``.  With ``carrier_hz`` set,
    each sample carries the predicted Doppler shift for receiver
    pre-tuning.
    """
    if sample_s <= 0:
        raise ValueError("sample interval must be positive")
    # Collect contiguous contact intervals per (station, satellite).
    intervals: list[tuple[int, int, datetime, datetime]] = []
    for sat_index, entries in sorted(plan.entries.items()):
        run_start: datetime | None = None
        run_station = -1
        previous_end: datetime | None = None
        for entry in entries:
            entry_end = entry.start + timedelta(seconds=plan_step_s(plan))
            if (run_start is not None and entry.station_index == run_station
                    and previous_end == entry.start):
                previous_end = entry_end
                continue
            if run_start is not None:
                intervals.append((run_station, sat_index, run_start,
                                  previous_end))
            run_start = entry.start
            run_station = entry.station_index
            previous_end = entry_end
        if run_start is not None:
            intervals.append((run_station, sat_index, run_start, previous_end))

    tracks: dict[int, list[PointingTrack]] = {}
    for station_index, sat_index, start, end in intervals:
        station = network[station_index]
        sat = satellites[sat_index]
        track = PointingTrack(station_index, sat_index)
        duration = (end - start).total_seconds()
        count = max(2, int(duration // sample_s) + 1)
        for k in range(count):
            when = start + timedelta(seconds=min(k * sample_s, duration))
            pos_teme, vel_teme = sat.position_teme(when)
            pos_ecef, vel_ecef = teme_to_ecef(
                pos_teme, datetime_to_jd(when), vel_teme
            )
            topo = look_angles(
                station.latitude_deg, station.longitude_deg,
                station.altitude_km, pos_ecef, vel_ecef,
            )
            doppler = 0.0
            if carrier_hz is not None:
                doppler = topo.doppler_shift_hz(carrier_hz)
            track.samples.append(PointingSample(
                when, topo.azimuth_deg, topo.elevation_deg, doppler,
            ))
        tracks.setdefault(station_index, []).append(track)
    for station_tracks in tracks.values():
        station_tracks.sort(key=lambda t: t.start)
    return tracks


def plan_step_s(plan) -> float:
    """Infer the plan's step from its entry grid (fallback 60 s)."""
    starts = sorted(
        entry.start
        for entries in plan.entries.values()
        for entry in entries
    )
    deltas = [
        (b - a).total_seconds() for a, b in zip(starts, starts[1:])
        if b > a
    ]
    return min(deltas) if deltas else 60.0


def rotator_conflicts(tracks: list[PointingTrack]) -> list[tuple[PointingTrack, PointingTrack]]:
    """Overlapping tracks on one station (should be empty for capacity 1)."""
    conflicts = []
    for a, b in zip(tracks, tracks[1:]):
        if a.end > b.start:
            conflicts.append((a, b))
    return conflicts
