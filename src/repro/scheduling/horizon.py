"""Cross-time (horizon) scheduling -- the paper's stated future work.

Sec. 3.1: "We do not optimize for links across time.  This optimization
can further benefit DGS but we leave this to future work."  This module
implements that future work as a model-predictive scheduler:

1. Build contact graphs for the next H steps (using forecasts, exactly
   like plan building).
2. Greedily assign (satellite, station, step) triples in descending value
   over the whole window -- a 1/2-approximation to the time-expanded
   maximum-weight matching -- while discounting a satellite's later-step
   weights by the backlog fraction its accepted slots will already drain
   (otherwise one stale queue would win every slot in the window).
3. Execute the window's first R steps, then re-plan (receding horizon).

The matching degenerates to the paper's per-instant scheduler at H=1, and
the ablation bench quantifies what the lookahead buys -- which is itself a
result the paper left open.
"""

from __future__ import annotations

from datetime import datetime, timedelta

from repro.scheduling.matching import Assignment
from repro.scheduling.scheduler import DownlinkScheduler, ScheduleStep


class HorizonScheduler(DownlinkScheduler):
    """Receding-horizon variant of the DGS scheduler.

    Parameters (beyond :class:`DownlinkScheduler`):

    horizon_steps:
        Window length H in scheduling steps.
    replan_steps:
        Execute this many steps of each window before re-planning
        (1 = re-plan every step; H = plan once per window).
    """

    def __init__(self, *args, horizon_steps: int = 10,
                 replan_steps: int = 5, **kwargs):
        super().__init__(*args, **kwargs)
        if horizon_steps < 1:
            raise ValueError("horizon must be at least 1 step")
        if not 1 <= replan_steps <= horizon_steps:
            raise ValueError("replan_steps must be in [1, horizon_steps]")
        self.horizon_steps = horizon_steps
        self.replan_steps = replan_steps
        self._window_start: datetime | None = None
        self._window: dict[int, list[Assignment]] = {}

    # -- public interface --------------------------------------------------

    def schedule_step(self, when: datetime,
                      forecast_issued_at: datetime | None = None) -> ScheduleStep:
        offset = self._window_offset(when)
        if offset is None or offset >= self.replan_steps:
            self._plan_window(when, forecast_issued_at)
            offset = 0
        assignments = self._window.get(offset, [])
        return ScheduleStep(
            when=when,
            assignments=assignments,
            num_edges=self._window_edge_count,
        )

    # -- internals -----------------------------------------------------------

    def _window_offset(self, when: datetime) -> int | None:
        if self._window_start is None:
            return None
        delta = (when - self._window_start).total_seconds()
        if delta < 0:
            return None
        offset = round(delta / self.step_s)
        if abs(delta - offset * self.step_s) > 1e-6 or offset >= self.horizon_steps:
            return None
        return offset

    def _plan_window(self, start: datetime,
                     forecast_issued_at: datetime | None) -> None:
        graphs = []
        for k in range(self.horizon_steps):
            when = start + timedelta(seconds=k * self.step_s)
            graphs.append(self.contact_graph(when, forecast_issued_at))
        self._window_edge_count = len(graphs[0].edges) if graphs else 0

        # All (step, edge) candidates, heaviest first.
        candidates = [
            (k, edge) for k, graph in enumerate(graphs) for edge in graph.edges
        ]
        candidates.sort(
            key=lambda item: (-item[1].weight, item[0],
                              item[1].satellite_index, item[1].station_index)
        )
        caps = self.capacities or [1] * len(self.network)
        station_load = [[0] * len(self.network) for _ in range(self.horizon_steps)]
        sat_busy: set[tuple[int, int]] = set()
        # Backlog drain bookkeeping: discount later-step weights once a
        # satellite's accepted slots cover its current backlog.
        remaining_bits = {
            i: sat.storage.backlog_bits for i, sat in enumerate(self.satellites)
        }
        window: dict[int, list[Assignment]] = {k: [] for k in range(self.horizon_steps)}
        for k, edge in candidates:
            sat = edge.satellite_index
            if (sat, k) in sat_busy:
                continue
            if station_load[k][edge.station_index] >= caps[edge.station_index]:
                continue
            if remaining_bits.get(sat, 0.0) <= 0.0:
                continue  # nothing left worth a slot in this window
            sat_busy.add((sat, k))
            station_load[k][edge.station_index] += 1
            remaining_bits[sat] = remaining_bits.get(sat, 0.0) - (
                edge.bitrate_bps * self.step_s
            )
            window[k].append(Assignment.from_edge(edge))
        self._window_start = start
        self._window = window
