"""Time-instant contact graph construction (paper Sec. 3.1, steps 1-2).

At each scheduling instant we need the weighted bipartite graph between
satellites and ground stations: an edge exists when the satellite is above
the station's elevation mask and the station's constraint bitmap allows it;
the edge weight is the value function applied to the link-model bitrate.

Everything numeric is vectorized: station ECEF positions and ENU bases are
precomputed once, satellite positions come from the shared
:class:`~repro.orbits.ephemeris.EphemerisTable` when one covers the
instant (one batched SGP4 pass per fleet per horizon, reused across
experiment variants), and the full M x N elevation/range matrix is a
handful of numpy operations.  Edge pricing runs the batched link-budget
kernel (:meth:`LinkBudget.evaluate_batch`) over all visible pairs at once
-- FSPL, ITU rain/cloud/gas, and MODCOD selection as array expressions --
instead of a per-pair scalar call.  The original per-pair loop is kept as
the reference path (``batched=False``) for the equivalence tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from datetime import datetime
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.groundstations.network import GroundStationNetwork
from repro.linkbudget.budget import LinkBudget
from repro.orbits.frames import geodetic_to_ecef
from repro.orbits.timebase import datetime_to_jd, gmst_rad
from repro.satellites.satellite import Satellite
from repro.scheduling.value_functions import ValueFunction
from repro.weather.cells import WeatherSample

if TYPE_CHECKING:
    from repro.orbits.ephemeris import EphemerisTable

#: Forecast oracle: (lat, lon, valid_at) -> WeatherSample, already bound to
#: an issue time by the caller.
ForecastFn = Callable[[float, float, datetime], WeatherSample]


@dataclass(frozen=True)
class ContactEdge:
    """One feasible satellite-station link at one instant."""

    satellite_index: int
    station_index: int
    weight: float
    bitrate_bps: float
    elevation_deg: float
    range_km: float
    #: Ideal Es/N0 threshold (dB) of the MODCOD the plan commits to; the
    #: transmission decodes iff the truth-weather Es/N0 clears this.
    required_esn0_db: float = -100.0


@dataclass
class ContactGraph:
    """The bipartite graph for one instant."""

    when: datetime
    edges: list[ContactEdge]
    num_satellites: int
    num_stations: int
    #: Per-endpoint adjacency, built once at construction so repeated
    #: ``edges_for_*`` calls are O(degree) rather than O(E) scans.
    _by_satellite: list[list[ContactEdge]] = field(
        init=False, repr=False, compare=False
    )
    _by_station: list[list[ContactEdge]] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        by_sat: list[list[ContactEdge]] = [[] for _ in range(self.num_satellites)]
        by_station: list[list[ContactEdge]] = [[] for _ in range(self.num_stations)]
        for e in self.edges:
            by_sat[e.satellite_index].append(e)
            by_station[e.station_index].append(e)
        self._by_satellite = by_sat
        self._by_station = by_station

    def edges_for_satellite(self, sat_index: int) -> list[ContactEdge]:
        return self._by_satellite[sat_index]

    def edges_for_station(self, gs_index: int) -> list[ContactEdge]:
        return self._by_station[gs_index]

    def weight_matrix(self) -> np.ndarray:
        """Dense M x N weight matrix (0 where no edge)."""
        mat = np.zeros((self.num_satellites, self.num_stations))
        if not self.edges:
            return mat
        count = len(self.edges)
        sat_idx = np.fromiter(
            (e.satellite_index for e in self.edges), np.intp, count
        )
        gs_idx = np.fromiter(
            (e.station_index for e in self.edges), np.intp, count
        )
        weights = np.fromiter((e.weight for e in self.edges), float, count)
        mat[sat_idx, gs_idx] = weights
        return mat


class GeometryEngine:
    """Precomputed station geometry + vectorized visibility evaluation."""

    def __init__(self, network: GroundStationNetwork):
        self.network = network
        positions = []
        ups = []
        easts = []
        norths = []
        for st in network:
            positions.append(
                geodetic_to_ecef(st.latitude_deg, st.longitude_deg, st.altitude_km)
            )
            lat = math.radians(st.latitude_deg)
            lon = math.radians(st.longitude_deg)
            ups.append(
                [
                    math.cos(lat) * math.cos(lon),
                    math.cos(lat) * math.sin(lon),
                    math.sin(lat),
                ]
            )
            easts.append([-math.sin(lon), math.cos(lon), 0.0])
            norths.append(
                [
                    -math.sin(lat) * math.cos(lon),
                    -math.sin(lat) * math.sin(lon),
                    math.cos(lat),
                ]
            )
        self._station_ecef = np.array(positions)  # (N, 3)
        self._up = np.array(ups)
        self._east = np.array(easts)
        self._north = np.array(norths)
        self._min_elevation = np.array([st.min_elevation_deg for st in network])
        # Per-station scalars the batched budget kernel consumes.
        self._station_lat_deg = np.array([st.latitude_deg for st in network])
        self._station_alt_km = np.array([st.altitude_km for st in network])
        self._can_transmit = np.array(
            [st.can_transmit for st in network], dtype=bool
        )

    def satellite_ecef(self, satellites: list[Satellite],
                       when: datetime) -> np.ndarray:
        """Fleet ECEF positions ``(M, 3)`` by per-satellite propagation."""
        jd = datetime_to_jd(when)
        theta = gmst_rad(jd)
        cos_t, sin_t = math.cos(theta), math.sin(theta)
        rot = np.array(
            [[cos_t, sin_t, 0.0], [-sin_t, cos_t, 0.0], [0.0, 0.0, 1.0]]
        )
        sat_ecef = np.empty((len(satellites), 3))
        for i, sat in enumerate(satellites):
            pos_teme, _ = sat.position_teme(when)
            sat_ecef[i] = rot @ pos_teme
        return sat_ecef

    def visibility(
        self,
        satellites: list[Satellite],
        when: datetime,
        sat_ecef: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(elevation_deg, range_km, visible_mask) matrices, shape (M, N).

        ``sat_ecef`` short-circuits propagation with precomputed fleet
        positions (an :class:`EphemerisTable` row).
        """
        if sat_ecef is None:
            sat_ecef = self.satellite_ecef(satellites, when)
        # rel[i, j] = satellite i relative to station j.
        rel = sat_ecef[:, None, :] - self._station_ecef[None, :, :]
        rng = np.linalg.norm(rel, axis=2)
        up_component = np.einsum("ijk,jk->ij", rel, self._up)
        with np.errstate(invalid="ignore", divide="ignore"):
            elevation = np.degrees(np.arcsin(np.clip(up_component / rng, -1.0, 1.0)))
        visible = elevation > self._min_elevation[None, :]
        return elevation, rng, visible


def build_contact_graph(
    satellites: list[Satellite],
    network: GroundStationNetwork,
    when: datetime,
    value_function: ValueFunction,
    link_budget_for: Callable[[Satellite, int], LinkBudget],
    forecast: ForecastFn,
    step_s: float,
    geometry: GeometryEngine | None = None,
    require_current_plan: bool = False,
    plan_max_age_s: float = float("inf"),
    station_available: Callable[[int, datetime], bool] | None = None,
    station_weight: Callable[[int, datetime], float] | None = None,
    ephemeris: "EphemerisTable | None" = None,
    batched: bool = True,
    pair_groups: PairGroupCache | None = None,
    recorder=None,
) -> ContactGraph:
    """Construct the weighted bipartite graph at ``when``.

    ``link_budget_for(sat, station_index)`` returns the budget calculator
    binding that pair (callers usually cache these).  When
    ``require_current_plan`` is set, satellites without a sufficiently
    fresh uplinked plan contribute no edges to receive-only stations --
    they do not know where to point -- but still get edges to
    transmit-capable stations, which can retask them in real time.
    ``station_available(station_index, when)`` lets callers exclude
    stations the scheduler knows to be down (announced maintenance).
    ``station_weight(station_index, when)`` is the graded variant used by
    the fault layer: every edge weight to the station is multiplied by
    the returned factor (a partial outage down-weights the station, an
    availability prior keeps a gamble edge to a dark one), and a factor
    <= 0 prunes the station entirely.  The factor is applied identically
    -- same float operation, same edge order -- in the scalar and batched
    paths, preserving the equivalence contract.

    ``ephemeris`` supplies precomputed fleet positions for on-grid
    instants (off-grid instants fall back to per-satellite propagation).
    ``batched=False`` selects the scalar per-pair reference path; the
    default batched path prices all visible pairs through
    :meth:`LinkBudget.evaluate_batch` and produces the same edges in the
    same order (see the equivalence tests).

    ``recorder`` (a :class:`repro.obs.Recorder`) receives visible-pair and
    ephemeris-row counters; it never influences the constructed graph.
    """
    if geometry is None:
        geometry = GeometryEngine(network)
    unavailable: set[int] = set()
    if station_available is not None:
        unavailable = {
            j for j in range(len(network)) if not station_available(j, when)
        }
    weight_factor: list[float] | None = None
    if station_weight is not None:
        weight_factor = [
            float(station_weight(j, when)) for j in range(len(network))
        ]
        unavailable |= {
            j for j, f in enumerate(weight_factor) if f <= 0.0
        }
    sat_ecef = None
    if ephemeris is not None:
        sat_ecef = ephemeris.positions_ecef(when)
    elevation, rng_km, visible = geometry.visibility(
        satellites, when, sat_ecef=sat_ecef
    )
    if recorder is not None and recorder.enabled:
        recorder.counter("visible_pairs", int(visible.sum()))
        recorder.counter(
            "ephemeris_row_hits" if sat_ecef is not None
            else "ephemeris_row_misses"
        )
    if batched:
        edges = _batched_edges(
            satellites, network, when, value_function, link_budget_for,
            forecast, step_s, geometry, elevation, rng_km, visible,
            unavailable, require_current_plan, plan_max_age_s, weight_factor,
            pair_groups,
        )
    else:
        edges = _scalar_edges(
            satellites, network, when, value_function, link_budget_for,
            forecast, step_s, geometry, elevation, rng_km, visible,
            unavailable, require_current_plan, plan_max_age_s, weight_factor,
        )
    return ContactGraph(
        when=when,
        edges=edges,
        num_satellites=len(satellites),
        num_stations=len(network),
    )


def _scalar_edges(
    satellites: list[Satellite],
    network: GroundStationNetwork,
    when: datetime,
    value_function: ValueFunction,
    link_budget_for: Callable[[Satellite, int], LinkBudget],
    forecast: ForecastFn,
    step_s: float,
    geometry: GeometryEngine,
    elevation: np.ndarray,
    rng_km: np.ndarray,
    visible: np.ndarray,
    unavailable: set[int],
    require_current_plan: bool,
    plan_max_age_s: float,
    weight_factor: list[float] | None = None,
) -> list[ContactEdge]:
    """The per-pair reference path: one scalar budget call per visible pair."""
    edges: list[ContactEdge] = []
    weather_cache: dict[int, WeatherSample] = {}
    for i, sat in enumerate(satellites):
        visible_stations = np.nonzero(visible[i])[0]
        if visible_stations.size == 0:
            continue
        has_plan = sat.has_current_plan(when, plan_max_age_s)
        for j in visible_stations:
            if int(j) in unavailable:
                continue
            station = network[int(j)]
            if not station.allows_satellite(i):
                continue
            if require_current_plan and not has_plan and not station.can_transmit:
                continue
            sample = weather_cache.get(int(j))
            if sample is None:
                sample = forecast(
                    station.latitude_deg, station.longitude_deg, when
                )
                weather_cache[int(j)] = sample
            budget = link_budget_for(sat, int(j))
            result = budget.evaluate(
                range_km=float(rng_km[i, j]),
                elevation_deg=float(elevation[i, j]),
                station_latitude_deg=station.latitude_deg,
                rain_rate_mm_h=sample.rain_rate_mm_h,
                cloud_water_kg_m2=sample.cloud_water_kg_m2,
                station_altitude_km=station.altitude_km,
            )
            if not result.closes:
                continue
            weight = value_function.edge_value(
                sat, station.station_id, result.bitrate_bps, when, step_s
            )
            if weight_factor is not None:
                weight *= weight_factor[int(j)]
            if weight <= 0.0:
                continue
            edges.append(
                ContactEdge(
                    satellite_index=i,
                    station_index=int(j),
                    weight=weight,
                    bitrate_bps=result.bitrate_bps,
                    elevation_deg=float(elevation[i, j]),
                    range_km=float(rng_km[i, j]),
                    required_esn0_db=result.modcod.esn0_db,
                )
            )
    return edges


def _budget_group_key(budget: LinkBudget) -> tuple:
    """Pairs sharing this key evaluate identically and can batch together."""
    return (
        budget.radio,
        budget.receiver,
        budget.acm_margin_db,
        budget.hardware_calibration_db,
        budget.pilots,
    )


#: Interned hardware-class ids: hashing the full (radio, receiver, ...)
#: tuple per pair per step is measurable, so each LinkBudget caches its
#: small-int class id after the first lookup.  The registry stays tiny --
#: one entry per distinct hardware class ever seen.
_GROUP_IDS: dict[tuple, int] = {}


def _budget_group_id(budget: LinkBudget) -> int:
    gid = budget.__dict__.get("_group_id")
    if gid is None:
        key = _budget_group_key(budget)
        gid = _GROUP_IDS.setdefault(key, len(_GROUP_IDS))
        budget.__dict__["_group_id"] = gid
    return gid


class PairGroupCache:
    """Lazily-filled (satellite, station) -> hardware-class-id matrix.

    Budget assignment is time-invariant, so after the first step touching
    a pair the batched path resolves its hardware class with one fancy
    index instead of a ``link_budget_for`` call per pair per step.
    """

    def __init__(self, num_satellites: int, num_stations: int):
        self.gid = np.full((num_satellites, num_stations), -1, dtype=np.int32)
        #: One representative (value-identical) budget per class id.
        self.budget_of: dict[int, LinkBudget] = {}


def _batched_edges(
    satellites: list[Satellite],
    network: GroundStationNetwork,
    when: datetime,
    value_function: ValueFunction,
    link_budget_for: Callable[[Satellite, int], LinkBudget],
    forecast: ForecastFn,
    step_s: float,
    geometry: GeometryEngine,
    elevation: np.ndarray,
    rng_km: np.ndarray,
    visible: np.ndarray,
    unavailable: set[int],
    require_current_plan: bool,
    plan_max_age_s: float,
    weight_factor: list[float] | None = None,
    pair_groups: PairGroupCache | None = None,
) -> list[ContactEdge]:
    """Masked-array edge construction: one budget kernel call per hardware
    class instead of a scalar call per pair.

    Produces the same edges, in the same (satellite, station) row-major
    order, as :func:`_scalar_edges` -- matchers tie-break on edge order,
    so order preservation is part of the equivalence contract.
    """
    num_sats, num_stations = visible.shape
    mask = visible.copy()
    if unavailable:
        mask[:, sorted(unavailable)] = False
    # Constraint bitmaps: only stations that are not allow-all need the
    # per-satellite expansion (rare: volunteer stations allow everyone).
    for j, station in enumerate(network):
        if station.constraints.bitmap != -1 and mask[:, j].any():
            allowed = np.fromiter(
                (station.allows_satellite(i) for i in range(num_sats)),
                bool, num_sats,
            )
            mask[:, j] &= allowed
    if require_current_plan:
        has_plan = np.fromiter(
            (s.has_current_plan(when, plan_max_age_s) for s in satellites),
            bool, num_sats,
        )
        mask &= has_plan[:, None] | geometry._can_transmit[None, :]
    sat_idx, gs_idx = np.nonzero(mask)
    if sat_idx.size == 0:
        return []

    # Weather once per involved station, as in the scalar path's cache.
    rain = np.zeros(num_stations)
    cloud = np.zeros(num_stations)
    for j in np.unique(gs_idx):
        station = network[int(j)]
        sample = forecast(station.latitude_deg, station.longitude_deg, when)
        rain[j] = sample.rain_rate_mm_h
        cloud[j] = sample.cloud_water_kg_m2

    # Group pairs by budget hardware class; the paper's scenarios collapse
    # to one or two classes, so the kernel runs once or twice per instant.
    # The class of a pair never changes, so the PairGroupCache resolves
    # previously-seen pairs with one fancy index.
    sat_list = sat_idx.tolist()
    gs_list = gs_idx.tolist()
    if pair_groups is None:
        pair_groups = PairGroupCache(num_sats, num_stations)
    gids = pair_groups.gid[sat_idx, gs_idx]
    for p in np.nonzero(gids < 0)[0].tolist():
        i, j = sat_list[p], gs_list[p]
        budget = link_budget_for(satellites[i], j)
        gid = _budget_group_id(budget)
        pair_groups.gid[i, j] = gid
        pair_groups.budget_of.setdefault(gid, budget)
        gids[p] = gid

    pair_count = sat_idx.size
    closes = np.zeros(pair_count, dtype=bool)
    bitrate = np.zeros(pair_count)
    required_esn0 = np.full(pair_count, -100.0)
    pair_elevation = elevation[sat_idx, gs_idx]
    pair_range = rng_km[sat_idx, gs_idx]
    for gid in np.unique(gids).tolist():
        budget = pair_groups.budget_of[gid]
        pos = np.nonzero(gids == gid)[0]
        stations_of = gs_idx[pos]
        result = budget.evaluate_batch(
            range_km=pair_range[pos],
            elevation_deg=pair_elevation[pos],
            station_latitude_deg=geometry._station_lat_deg[stations_of],
            rain_rate_mm_h=rain[stations_of],
            cloud_water_kg_m2=cloud[stations_of],
            station_altitude_km=geometry._station_alt_km[stations_of],
        )
        closes[pos] = result.closes
        bitrate[pos] = result.bitrate_bps
        required_esn0[pos] = result.required_esn0_db

    # Value pricing needs each satellite's live queue state; it stays a
    # (cheap) Python pass over the closing pairs only.
    edges: list[ContactEdge] = []
    stations = list(network)
    closes_list = closes.tolist()
    bitrate_list = bitrate.tolist()
    elev_list = pair_elevation.tolist()
    range_list = pair_range.tolist()
    esn0_list = required_esn0.tolist()
    for p in range(pair_count):
        if not closes_list[p]:
            continue
        i = sat_list[p]
        j = gs_list[p]
        weight = value_function.edge_value(
            satellites[i], stations[j].station_id, bitrate_list[p],
            when, step_s,
        )
        if weight_factor is not None:
            weight *= weight_factor[j]
        if weight <= 0.0:
            continue
        edges.append(
            ContactEdge(
                satellite_index=i,
                station_index=j,
                weight=weight,
                bitrate_bps=bitrate_list[p],
                elevation_deg=elev_list[p],
                range_km=range_list[p],
                required_esn0_db=esn0_list[p],
            )
        )
    return edges
