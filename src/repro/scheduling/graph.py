"""Time-instant contact graph construction (paper Sec. 3.1, steps 1-2).

At each scheduling instant we need the weighted bipartite graph between
satellites and ground stations: an edge exists when the satellite is above
the station's elevation mask and the station's constraint bitmap allows it;
the edge weight is the value function applied to the link-model bitrate.

Everything numeric is vectorized: station ECEF positions and ENU bases are
precomputed once, satellite positions come from the shared
:class:`~repro.orbits.ephemeris.EphemerisTable` when one covers the
instant (one batched SGP4 pass per fleet per horizon, reused across
experiment variants), and the full M x N elevation/range matrix is a
handful of numpy operations.  Edge pricing runs the batched link-budget
kernel (:meth:`LinkBudget.evaluate_batch`) over all visible pairs at once
-- FSPL, ITU rain/cloud/gas, and MODCOD selection as array expressions --
instead of a per-pair scalar call.  The original per-pair loop is kept as
the reference path (``batched=False``) for the equivalence tests.
"""

from __future__ import annotations

import math
from datetime import datetime
from typing import TYPE_CHECKING, Callable, NamedTuple

import numpy as np

from repro.groundstations.network import GroundStationNetwork
from repro.linkbudget.budget import KernelStatics, LinkBudget
from repro.orbits.frames import geodetic_to_ecef
from repro.orbits.timebase import datetime_to_jd, gmst_rad
from repro.satellites.satellite import Satellite
from repro.scheduling.value_functions import ValueFunction
from repro.weather.cells import WeatherSample

if TYPE_CHECKING:
    from repro.orbits.ephemeris import EphemerisTable

#: Forecast oracle: (lat, lon, valid_at) -> WeatherSample, already bound to
#: an issue time by the caller.
ForecastFn = Callable[[float, float, datetime], WeatherSample]


class ContactEdge(NamedTuple):
    """One feasible satellite-station link at one instant.

    A NamedTuple rather than a dataclass: tens of thousands of edges are
    constructed per scheduling instant at mega-constellation scale, and
    tuple construction is ~3x cheaper than frozen-dataclass ``__init__``.
    """

    satellite_index: int
    station_index: int
    weight: float
    bitrate_bps: float
    elevation_deg: float
    range_km: float
    #: Ideal Es/N0 threshold (dB) of the MODCOD the plan commits to; the
    #: transmission decodes iff the truth-weather Es/N0 clears this.
    required_esn0_db: float = -100.0


class EdgeColumns(NamedTuple):
    """Column-array form of a graph's edges, in edge order.

    The sparse contact-graph representation: seven parallel arrays
    instead of a list of :class:`ContactEdge` objects.  The batched build
    paths produce this directly (never constructing per-edge objects) and
    the matchers consume it directly, so at mega-constellation scale no
    per-edge Python object exists unless something asks for ``.edges``.
    """

    satellite_index: np.ndarray  # intp
    station_index: np.ndarray  # intp
    weight: np.ndarray
    bitrate_bps: np.ndarray
    elevation_deg: np.ndarray
    range_km: np.ndarray
    required_esn0_db: np.ndarray

    @classmethod
    def from_edges(cls, edges: list[ContactEdge]) -> "EdgeColumns":
        count = len(edges)
        return cls(
            np.fromiter((e.satellite_index for e in edges), np.intp, count),
            np.fromiter((e.station_index for e in edges), np.intp, count),
            np.fromiter((e.weight for e in edges), float, count),
            np.fromiter((e.bitrate_bps for e in edges), float, count),
            np.fromiter((e.elevation_deg for e in edges), float, count),
            np.fromiter((e.range_km for e in edges), float, count),
            np.fromiter((e.required_esn0_db for e in edges), float, count),
        )

    def to_edges(self) -> list[ContactEdge]:
        """Materialize :class:`ContactEdge` objects (bit-identical fields)."""
        return list(map(ContactEdge._make, zip(*(col.tolist() for col in self))))


class ContactGraph:
    """The bipartite graph for one instant.

    Holds either an edge-object list (the scalar reference path) or
    :class:`EdgeColumns` arrays (the batched paths); each representation
    converts to the other lazily and the conversion round-trips bit-exact,
    so consumers see identical values whichever path built the graph.
    """

    __slots__ = ("when", "num_satellites", "num_stations",
                 "_edges", "_columns", "_by_satellite", "_by_station")

    def __init__(self, when: datetime, edges: list[ContactEdge] | None = None,
                 num_satellites: int = 0, num_stations: int = 0,
                 columns: EdgeColumns | None = None):
        if (edges is None) == (columns is None):
            raise ValueError("provide exactly one of edges= or columns=")
        self.when = when
        self.num_satellites = num_satellites
        self.num_stations = num_stations
        self._edges = edges
        self._columns = columns
        #: Per-endpoint adjacency, built lazily on first ``edges_for_*``
        #: call (O(E) once, then O(degree) per call).
        self._by_satellite: list[list[ContactEdge]] | None = None
        self._by_station: list[list[ContactEdge]] | None = None

    @property
    def edges(self) -> list[ContactEdge]:
        """Edge objects, materialized from the column arrays on demand."""
        if self._edges is None:
            self._edges = self._columns.to_edges()
        return self._edges

    @property
    def num_edges(self) -> int:
        """Edge count without materializing edge objects."""
        if self._edges is not None:
            return len(self._edges)
        return int(self._columns.satellite_index.size)

    def columns(self) -> EdgeColumns:
        """Column-array form of the edges (built from objects on demand)."""
        if self._columns is None:
            self._columns = EdgeColumns.from_edges(self._edges)
        return self._columns

    def _build_adjacency(self) -> None:
        by_sat: list[list[ContactEdge]] = [[] for _ in range(self.num_satellites)]
        by_station: list[list[ContactEdge]] = [[] for _ in range(self.num_stations)]
        for e in self.edges:
            by_sat[e.satellite_index].append(e)
            by_station[e.station_index].append(e)
        self._by_satellite = by_sat
        self._by_station = by_station

    def edges_for_satellite(self, sat_index: int) -> list[ContactEdge]:
        if self._by_satellite is None:
            self._build_adjacency()
        return self._by_satellite[sat_index]

    def edges_for_station(self, gs_index: int) -> list[ContactEdge]:
        if self._by_station is None:
            self._build_adjacency()
        return self._by_station[gs_index]

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sparse form: ``(sat_idx, gs_idx, weights)`` candidate-pair arrays.

        The scale-friendly counterpart of :meth:`weight_matrix` -- O(E)
        instead of O(M x N) -- in the graph's edge order (row-major by
        (satellite, station), matching the dense matrix flattening).
        """
        cols = self.columns()
        return cols.satellite_index, cols.station_index, cols.weight

    def weight_matrix(self) -> np.ndarray:
        """Dense M x N weight matrix (0 where no edge).

        Kept for small-population analysis; at mega-constellation scale
        use :meth:`edge_arrays`, which does not materialize M x N.
        """
        mat = np.zeros((self.num_satellites, self.num_stations))
        if self.num_edges == 0:
            return mat
        sat_idx, gs_idx, weights = self.edge_arrays()
        mat[sat_idx, gs_idx] = weights
        return mat


class GeometryEngine:
    """Precomputed station geometry + vectorized visibility evaluation."""

    def __init__(self, network: GroundStationNetwork):
        self.network = network
        positions = []
        ups = []
        easts = []
        norths = []
        for st in network:
            positions.append(
                geodetic_to_ecef(st.latitude_deg, st.longitude_deg, st.altitude_km)
            )
            lat = math.radians(st.latitude_deg)
            lon = math.radians(st.longitude_deg)
            ups.append(
                [
                    math.cos(lat) * math.cos(lon),
                    math.cos(lat) * math.sin(lon),
                    math.sin(lat),
                ]
            )
            easts.append([-math.sin(lon), math.cos(lon), 0.0])
            norths.append(
                [
                    -math.sin(lat) * math.cos(lon),
                    -math.sin(lat) * math.sin(lon),
                    math.cos(lat),
                ]
            )
        self._station_ecef = np.array(positions)  # (N, 3)
        self._up = np.array(ups)
        self._east = np.array(easts)
        self._north = np.array(norths)
        self._min_elevation = np.array([st.min_elevation_deg for st in network])
        self._sin_min_elevation = np.sin(np.radians(self._min_elevation))
        # Per-station scalars the batched budget kernel consumes.
        self._station_lat_deg = np.array([st.latitude_deg for st in network])
        self._station_alt_km = np.array([st.altitude_km for st in network])
        self._can_transmit = np.array(
            [st.can_transmit for st in network], dtype=bool
        )

    def satellite_ecef(self, satellites: list[Satellite],
                       when: datetime) -> np.ndarray:
        """Fleet ECEF positions ``(M, 3)`` by per-satellite propagation."""
        jd = datetime_to_jd(when)
        theta = gmst_rad(jd)
        cos_t, sin_t = math.cos(theta), math.sin(theta)
        rot = np.array(
            [[cos_t, sin_t, 0.0], [-sin_t, cos_t, 0.0], [0.0, 0.0, 1.0]]
        )
        sat_ecef = np.empty((len(satellites), 3))
        for i, sat in enumerate(satellites):
            pos_teme, _ = sat.position_teme(when)
            sat_ecef[i] = rot @ pos_teme
        return sat_ecef

    def visibility(
        self,
        satellites: list[Satellite],
        when: datetime,
        sat_ecef: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(elevation_deg, range_km, visible_mask) matrices, shape (M, N).

        ``sat_ecef`` short-circuits propagation with precomputed fleet
        positions (an :class:`EphemerisTable` row).
        """
        if sat_ecef is None:
            sat_ecef = self.satellite_ecef(satellites, when)
        # rel[i, j] = satellite i relative to station j.
        rel = sat_ecef[:, None, :] - self._station_ecef[None, :, :]
        rng = np.linalg.norm(rel, axis=2)
        up_component = np.einsum("ijk,jk->ij", rel, self._up)
        with np.errstate(invalid="ignore", divide="ignore"):
            elevation = np.degrees(np.arcsin(np.clip(up_component / rng, -1.0, 1.0)))
        visible = elevation > self._min_elevation[None, :]
        return elevation, rng, visible


def build_contact_graph(
    satellites: list[Satellite],
    network: GroundStationNetwork,
    when: datetime,
    value_function: ValueFunction,
    link_budget_for: Callable[[Satellite, int], LinkBudget],
    forecast: ForecastFn,
    step_s: float,
    geometry: GeometryEngine | None = None,
    require_current_plan: bool = False,
    plan_max_age_s: float = float("inf"),
    station_available: Callable[[int, datetime], bool] | None = None,
    station_weight: Callable[[int, datetime], float] | None = None,
    ephemeris: "EphemerisTable | None" = None,
    batched: bool = True,
    pair_groups: PairGroupCache | None = None,
    culling=None,
    queue_profile=None,
    recorder=None,
    window_index=None,
    window_state: dict | None = None,
    weather_memo=None,
) -> ContactGraph:
    """Construct the weighted bipartite graph at ``when``.

    ``link_budget_for(sat, station_index)`` returns the budget calculator
    binding that pair (callers usually cache these).  When
    ``require_current_plan`` is set, satellites without a sufficiently
    fresh uplinked plan contribute no edges to receive-only stations --
    they do not know where to point -- but still get edges to
    transmit-capable stations, which can retask them in real time.
    ``station_available(station_index, when)`` lets callers exclude
    stations the scheduler knows to be down (announced maintenance).
    ``station_weight(station_index, when)`` is the graded variant used by
    the fault layer: every edge weight to the station is multiplied by
    the returned factor (a partial outage down-weights the station, an
    availability prior keeps a gamble edge to a dark one), and a factor
    <= 0 prunes the station entirely.  The factor is applied identically
    -- same float operation, same edge order -- in the scalar and batched
    paths, preserving the equivalence contract.

    ``ephemeris`` supplies precomputed fleet positions for on-grid
    instants (off-grid instants fall back to per-satellite propagation).
    ``batched=False`` selects the scalar per-pair reference path; the
    default batched path prices all visible pairs through
    :meth:`LinkBudget.evaluate_batch` and produces the same edges in the
    same order (see the equivalence tests).

    ``culling`` (a :class:`repro.scheduling.culling.StationGrid`) selects
    the sparse candidate-pair path: the coarse-grid prefilter emits a
    conservative superset of the visible pairs and geometry + pricing run
    on candidates only, never materializing the M x N matrices.  The
    per-pair arithmetic is identical to the dense path, so edges (and
    therefore schedules) are bit-identical with culling on or off -- the
    contract ``tests/scheduling/test_culling_equivalence.py`` pins.
    Culling applies to the batched path only; the scalar reference path
    always prices the dense matrix.

    ``recorder`` (a :class:`repro.obs.Recorder`) receives visible-pair,
    candidate-pair, and ephemeris-row counters; it never influences the
    constructed graph.

    ``window_index`` (a :class:`repro.scheduling.windows.ContactWindowIndex`)
    short-circuits candidate generation entirely for on-grid instants:
    the visible pairs and their exact elevation/range come from the
    precomputed pass structure, so the step pays only for active
    contacts.  Off-grid instants fall through to the culled/dense paths.
    ``window_state`` is a mutable per-scheduler dict caching per-pair
    gathers between rise/set boundary ticks, and ``weather_memo`` (a
    ``_StationWeatherMemo``) reuses per-station samples within one
    provider quantization bucket.  All three are value-neutral: the
    same edges, in the same order, as the culled path -- the contract
    ``tests/scheduling/test_windows_equivalence.py`` pins.
    """
    if geometry is None:
        geometry = GeometryEngine(network)
    unavailable: set[int] = set()
    if station_available is not None:
        unavailable = {
            j for j in range(len(network)) if not station_available(j, when)
        }
    weight_factor: list[float] | None = None
    if station_weight is not None:
        weight_factor = [
            float(station_weight(j, when)) for j in range(len(network))
        ]
        unavailable |= {
            j for j, f in enumerate(weight_factor) if f <= 0.0
        }
    record = recorder is not None and recorder.enabled
    if batched and window_index is not None:
        k = window_index.step_of(when)
        if k is not None:
            w_sat, w_gs, w_elev, w_rng = window_index.pairs_at(k)
            if record:
                recorder.counter("window_index_hits")
                recorder.counter("visible_pairs", int(w_sat.size))
            edges = _window_edges(
                satellites, network, when, value_function, link_budget_for,
                forecast, step_s, geometry, w_sat, w_gs, w_elev, w_rng,
                unavailable, require_current_plan, plan_max_age_s,
                weight_factor, pair_groups, queue_profile, window_index, k,
                window_state, weather_memo, recorder,
            )
            return _graph_from(edges, when, len(satellites), len(network))
    sat_ecef = None
    if ephemeris is not None:
        sat_ecef = ephemeris.positions_ecef(when)
    if record:
        recorder.counter(
            "ephemeris_row_hits" if sat_ecef is not None
            else "ephemeris_row_misses"
        )
    if batched and culling is not None:
        if sat_ecef is None:
            sat_ecef = geometry.satellite_ecef(satellites, when)
        cand_sat, cand_gs = culling.candidate_pairs(sat_ecef)
        pair_elevation, pair_range, pair_visible = _pair_visibility(
            geometry, sat_ecef, cand_sat, cand_gs
        )
        if record:
            recorder.counter("visible_pairs", int(pair_visible.sum()))
            recorder.counter("candidate_pairs", int(cand_sat.size))
            recorder.counter(
                "culled_pairs",
                len(satellites) * len(network) - int(cand_sat.size),
            )
        edges = _culled_edges(
            satellites, network, when, value_function, link_budget_for,
            forecast, step_s, geometry, cand_sat, cand_gs, pair_elevation,
            pair_range, pair_visible, unavailable, require_current_plan,
            plan_max_age_s, weight_factor, pair_groups, queue_profile,
        )
        return _graph_from(edges, when, len(satellites), len(network))
    elevation, rng_km, visible = geometry.visibility(
        satellites, when, sat_ecef=sat_ecef
    )
    if record:
        recorder.counter("visible_pairs", int(visible.sum()))
    if batched:
        edges = _batched_edges(
            satellites, network, when, value_function, link_budget_for,
            forecast, step_s, geometry, elevation, rng_km, visible,
            unavailable, require_current_plan, plan_max_age_s, weight_factor,
            pair_groups, queue_profile,
        )
    else:
        edges = _scalar_edges(
            satellites, network, when, value_function, link_budget_for,
            forecast, step_s, geometry, elevation, rng_km, visible,
            unavailable, require_current_plan, plan_max_age_s, weight_factor,
        )
    return _graph_from(edges, when, len(satellites), len(network))


def _graph_from(edges, when: datetime, num_satellites: int,
                num_stations: int) -> ContactGraph:
    """Wrap a build path's output -- edge list or column arrays -- in a graph."""
    if isinstance(edges, EdgeColumns):
        return ContactGraph(when=when, columns=edges,
                            num_satellites=num_satellites,
                            num_stations=num_stations)
    return ContactGraph(when=when, edges=edges,
                        num_satellites=num_satellites,
                        num_stations=num_stations)


def _pair_visibility(
    geometry: GeometryEngine,
    sat_ecef: np.ndarray,
    sat_idx: np.ndarray,
    gs_idx: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-pair (elevation_deg, range_km, visible) for candidate pairs.

    Element-for-element the same arithmetic as the dense
    :meth:`GeometryEngine.visibility` (subtract, norm, 3-term dot,
    arcsin), just restricted to the candidate pairs -- so every pair that
    passes the sine-space prescreen has elevation/range bit-identical to
    its dense-matrix entry, and the prescreen only prunes pairs both
    paths reject.
    """
    rel = sat_ecef[sat_idx] - geometry._station_ecef[gs_idx]
    rng = np.linalg.norm(rel, axis=1)
    up_component = np.einsum("ij,ij->i", rel, geometry._up[gs_idx])
    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = np.clip(up_component / rng, -1.0, 1.0)
    # Conservative sine-space prescreen: ``degrees(arcsin(r))`` is
    # monotone in r with relative rounding error far below 1e-9, so any
    # pair whose elevation could clear its mask has
    # ``r >= sin(mask) - 1e-9``.  The exact arcsin (bit-identical to the
    # dense matrix entry) then runs on the survivors only; pruned pairs
    # are reported at -90 deg, which every mask rejects.
    maybe = np.nonzero(
        ratio >= geometry._sin_min_elevation[gs_idx] - 1e-9
    )[0]
    elevation = np.full(ratio.shape, -90.0)
    visible = np.zeros(ratio.shape, dtype=bool)
    if maybe.size:
        gs_maybe = gs_idx[maybe]
        elev_maybe = np.degrees(np.arcsin(ratio[maybe]))
        elevation[maybe] = elev_maybe
        visible[maybe] = elev_maybe > geometry._min_elevation[gs_maybe]
    return elevation, rng, visible


def _scalar_edges(
    satellites: list[Satellite],
    network: GroundStationNetwork,
    when: datetime,
    value_function: ValueFunction,
    link_budget_for: Callable[[Satellite, int], LinkBudget],
    forecast: ForecastFn,
    step_s: float,
    geometry: GeometryEngine,
    elevation: np.ndarray,
    rng_km: np.ndarray,
    visible: np.ndarray,
    unavailable: set[int],
    require_current_plan: bool,
    plan_max_age_s: float,
    weight_factor: list[float] | None = None,
) -> list[ContactEdge]:
    """The per-pair reference path: one scalar budget call per visible pair."""
    edges: list[ContactEdge] = []
    weather_cache: dict[int, WeatherSample] = {}
    for i, sat in enumerate(satellites):
        visible_stations = np.nonzero(visible[i])[0]
        if visible_stations.size == 0:
            continue
        has_plan = sat.has_current_plan(when, plan_max_age_s)
        for j in visible_stations:
            if int(j) in unavailable:
                continue
            station = network[int(j)]
            if not station.allows_satellite(i):
                continue
            if require_current_plan and not has_plan and not station.can_transmit:
                continue
            sample = weather_cache.get(int(j))
            if sample is None:
                sample = forecast(
                    station.latitude_deg, station.longitude_deg, when
                )
                weather_cache[int(j)] = sample
            budget = link_budget_for(sat, int(j))
            result = budget.evaluate(
                range_km=float(rng_km[i, j]),
                elevation_deg=float(elevation[i, j]),
                station_latitude_deg=station.latitude_deg,
                rain_rate_mm_h=sample.rain_rate_mm_h,
                cloud_water_kg_m2=sample.cloud_water_kg_m2,
                station_altitude_km=station.altitude_km,
            )
            if not result.closes:
                continue
            weight = value_function.edge_value(
                sat, station.station_id, result.bitrate_bps, when, step_s
            )
            if weight_factor is not None:
                weight *= weight_factor[int(j)]
            if weight <= 0.0:
                continue
            edges.append(
                ContactEdge(
                    satellite_index=i,
                    station_index=int(j),
                    weight=weight,
                    bitrate_bps=result.bitrate_bps,
                    elevation_deg=float(elevation[i, j]),
                    range_km=float(rng_km[i, j]),
                    required_esn0_db=result.modcod.esn0_db,
                )
            )
    return edges


def _empty_columns() -> EdgeColumns:
    empty_f = np.empty(0)
    return EdgeColumns(
        np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp),
        empty_f, empty_f.copy(), empty_f.copy(), empty_f.copy(),
        empty_f.copy(),
    )


def _budget_group_key(budget: LinkBudget) -> tuple:
    """Pairs sharing this key evaluate identically and can batch together."""
    return (
        budget.radio,
        budget.receiver,
        budget.acm_margin_db,
        budget.hardware_calibration_db,
        budget.pilots,
    )


#: Interned hardware-class ids: hashing the full (radio, receiver, ...)
#: tuple per pair per step is measurable, so each LinkBudget caches its
#: small-int class id after the first lookup.  The registry stays tiny --
#: one entry per distinct hardware class ever seen.
_GROUP_IDS: dict[tuple, int] = {}


def _budget_group_id(budget: LinkBudget) -> int:
    gid = budget.__dict__.get("_group_id")
    if gid is None:
        key = _budget_group_key(budget)
        gid = _GROUP_IDS.setdefault(key, len(_GROUP_IDS))
        budget.__dict__["_group_id"] = gid
    return gid


class PairGroupCache:
    """Lazily-filled (satellite, station) -> hardware-class-id matrix.

    Budget assignment is time-invariant, so after the first step touching
    a pair the batched path resolves its hardware class with one fancy
    index instead of a ``link_budget_for`` call per pair per step.
    """

    def __init__(self, num_satellites: int, num_stations: int):
        self.gid = np.full((num_satellites, num_stations), -1, dtype=np.int32)
        #: One representative (value-identical) budget per class id.
        self.budget_of: dict[int, LinkBudget] = {}


def _batched_edges(
    satellites: list[Satellite],
    network: GroundStationNetwork,
    when: datetime,
    value_function: ValueFunction,
    link_budget_for: Callable[[Satellite, int], LinkBudget],
    forecast: ForecastFn,
    step_s: float,
    geometry: GeometryEngine,
    elevation: np.ndarray,
    rng_km: np.ndarray,
    visible: np.ndarray,
    unavailable: set[int],
    require_current_plan: bool,
    plan_max_age_s: float,
    weight_factor: list[float] | None = None,
    pair_groups: PairGroupCache | None = None,
    queue_profile=None,
) -> "EdgeColumns | list[ContactEdge]":
    """Masked-array edge construction: one budget kernel call per hardware
    class instead of a scalar call per pair.

    Produces the same edges, in the same (satellite, station) row-major
    order, as :func:`_scalar_edges` -- matchers tie-break on edge order,
    so order preservation is part of the equivalence contract.
    """
    num_sats, num_stations = visible.shape
    mask = visible.copy()
    if unavailable:
        mask[:, sorted(unavailable)] = False
    # Constraint bitmaps: only stations that are not allow-all need the
    # per-satellite expansion (rare: volunteer stations allow everyone).
    for j, station in enumerate(network):
        if station.constraints.bitmap != -1 and mask[:, j].any():
            allowed = np.fromiter(
                (station.allows_satellite(i) for i in range(num_sats)),
                bool, num_sats,
            )
            mask[:, j] &= allowed
    if require_current_plan:
        has_plan = np.fromiter(
            (s.has_current_plan(when, plan_max_age_s) for s in satellites),
            bool, num_sats,
        )
        mask &= has_plan[:, None] | geometry._can_transmit[None, :]
    sat_idx, gs_idx = np.nonzero(mask)
    return _price_pairs(
        satellites, network, when, value_function, link_budget_for,
        forecast, step_s, geometry, sat_idx, gs_idx,
        elevation[sat_idx, gs_idx], rng_km[sat_idx, gs_idx],
        weight_factor, pair_groups, queue_profile,
    )


def _culled_edges(
    satellites: list[Satellite],
    network: GroundStationNetwork,
    when: datetime,
    value_function: ValueFunction,
    link_budget_for: Callable[[Satellite, int], LinkBudget],
    forecast: ForecastFn,
    step_s: float,
    geometry: GeometryEngine,
    cand_sat: np.ndarray,
    cand_gs: np.ndarray,
    pair_elevation: np.ndarray,
    pair_range: np.ndarray,
    pair_visible: np.ndarray,
    unavailable: set[int],
    require_current_plan: bool,
    plan_max_age_s: float,
    weight_factor: list[float] | None = None,
    pair_groups: PairGroupCache | None = None,
    queue_profile=None,
) -> "EdgeColumns | list[ContactEdge]":
    """Sparse counterpart of :func:`_batched_edges`: the same feasibility
    masks, applied to candidate-pair arrays instead of the M x N matrix.

    The candidate arrays arrive lexsorted by (satellite, station) -- the
    order ``np.nonzero`` yields on the dense mask -- and masking only ever
    removes entries, so the surviving pairs reach :func:`_price_pairs` in
    exactly the dense path's order.
    """
    num_sats = len(satellites)
    keep = pair_visible.copy()
    if unavailable:
        down = np.zeros(len(network), dtype=bool)
        down[sorted(unavailable)] = True
        keep &= ~down[cand_gs]
    for j, station in enumerate(network):
        if station.constraints.bitmap == -1:
            continue
        at_station = keep & (cand_gs == j)
        if not at_station.any():
            continue
        allowed = np.fromiter(
            (station.allows_satellite(i) for i in range(num_sats)),
            bool, num_sats,
        )
        keep &= allowed[cand_sat] | ~at_station
    if require_current_plan:
        has_plan = np.fromiter(
            (s.has_current_plan(when, plan_max_age_s) for s in satellites),
            bool, num_sats,
        )
        keep &= has_plan[cand_sat] | geometry._can_transmit[cand_gs]
    final = np.nonzero(keep)[0]
    return _price_pairs(
        satellites, network, when, value_function, link_budget_for,
        forecast, step_s, geometry, cand_sat[final], cand_gs[final],
        pair_elevation[final], pair_range[final], weight_factor, pair_groups,
        queue_profile,
    )


def _window_edges(
    satellites: list[Satellite],
    network: GroundStationNetwork,
    when: datetime,
    value_function: ValueFunction,
    link_budget_for: Callable[[Satellite, int], LinkBudget],
    forecast: ForecastFn,
    step_s: float,
    geometry: GeometryEngine,
    pair_sat: np.ndarray,
    pair_gs: np.ndarray,
    pair_elevation: np.ndarray,
    pair_range: np.ndarray,
    unavailable: set[int],
    require_current_plan: bool,
    plan_max_age_s: float,
    weight_factor: list[float] | None,
    pair_groups: PairGroupCache | None,
    queue_profile,
    window_index,
    step_k: int,
    window_state: dict | None,
    weather_memo,
    recorder,
) -> "EdgeColumns | list[ContactEdge]":
    """Index-driven counterpart of :func:`_culled_edges`.

    The stored pairs *are* the visible set (same arithmetic, same
    row-major order), so only the feasibility masks remain -- and in the
    common unmasked case the CSR slices flow to :func:`_price_pairs`
    without a single copy.  Between rise/set boundary ticks the pair
    topology is constant, so the per-pair gathers the pricing kernel
    needs (station latitude/altitude, hardware-class ids) are cached in
    ``window_state`` and reused; the ``edges_rebuilt`` counter ticks
    only when a pass boundary invalidates them.
    """
    num_sats = len(satellites)
    n = int(pair_sat.size)
    keep: np.ndarray | None = None  # None == every stored pair survives
    if unavailable:
        down = np.zeros(len(network), dtype=bool)
        down[sorted(unavailable)] = True
        keep = ~down[pair_gs]
    for j, station in enumerate(network):
        if station.constraints.bitmap == -1:
            continue
        base = keep if keep is not None else np.ones(n, dtype=bool)
        at_station = base & (pair_gs == j)
        if not at_station.any():
            continue
        allowed = np.fromiter(
            (station.allows_satellite(i) for i in range(num_sats)),
            bool, num_sats,
        )
        keep = base & (allowed[pair_sat] | ~at_station)
    if require_current_plan:
        has_plan = np.fromiter(
            (s.has_current_plan(when, plan_max_age_s) for s in satellites),
            bool, num_sats,
        )
        mask = has_plan[pair_sat] | geometry._can_transmit[pair_gs]
        keep = mask if keep is None else keep & mask
    if keep is not None and bool(keep.all()):
        keep = None

    pair_static = None
    kernel_static = window_index.kernel_statics_at(step_k)
    if keep is None:
        if window_state is not None and pair_groups is not None:
            seg = window_index.segment_id(step_k)
            if window_state.get("segment") == seg:
                pair_static = window_state.get("static")
            if pair_static is None and n:
                gids = pair_groups.gid[pair_sat, pair_gs]
                if not (gids < 0).any():
                    pair_static = (
                        geometry._station_lat_deg[pair_gs],
                        geometry._station_alt_km[pair_gs],
                        gids,
                    )
                    window_state["segment"] = seg
                    window_state["static"] = pair_static
                    if recorder is not None and recorder.enabled:
                        recorder.counter("edges_rebuilt")
        sel_sat, sel_gs = pair_sat, pair_gs
        sel_elev, sel_rng = pair_elevation, pair_range
    else:
        final = np.nonzero(keep)[0]
        sel_sat, sel_gs = pair_sat[final], pair_gs[final]
        sel_elev, sel_rng = pair_elevation[final], pair_range[final]
        if kernel_static is not None:
            # Gathering precomputed columns with the same mask keeps them
            # element-aligned (and element-wise ops on a gathered subset
            # are bit-equal to gathering their full-array results).
            kernel_static = {
                gid: st.take(final) for gid, st in kernel_static.items()
            }
    return _price_pairs(
        satellites, network, when, value_function, link_budget_for,
        forecast, step_s, geometry, sel_sat, sel_gs, sel_elev, sel_rng,
        weight_factor, pair_groups, queue_profile,
        weather_memo=weather_memo, pair_static=pair_static,
        kernel_static=kernel_static,
    )


def _price_pairs(
    satellites: list[Satellite],
    network: GroundStationNetwork,
    when: datetime,
    value_function: ValueFunction,
    link_budget_for: Callable[[Satellite, int], LinkBudget],
    forecast: ForecastFn,
    step_s: float,
    geometry: GeometryEngine,
    sat_idx: np.ndarray,
    gs_idx: np.ndarray,
    pair_elevation: np.ndarray,
    pair_range: np.ndarray,
    weight_factor: list[float] | None = None,
    pair_groups: PairGroupCache | None = None,
    queue_profile=None,
    weather_memo=None,
    pair_static: tuple | None = None,
    kernel_static: dict[int, KernelStatics] | None = None,
) -> "EdgeColumns | list[ContactEdge]":
    """Price feasible pairs through the batched budget kernel.

    The shared tail of the dense, culled, and window-index batched paths:
    all feed it the same final pair set in the same order, so all produce
    identical edges.  ``sat_idx``/``gs_idx`` are the feasible pairs (all
    masks applied) with their already-gathered elevation/range.

    ``weather_memo`` substitutes a per-station sample memo for the
    involved-station oracle loop; it issues the identical first call per
    provider quantization bucket, so the returned values (and the
    provider's cache contents) are bit-identical to the loop's.
    ``pair_static`` is an optional pre-gathered
    ``(station_lat_deg, station_alt_km, gids)`` triple for this exact
    pair set -- the window path reuses it across boundary-free ticks.
    ``kernel_static`` maps hardware-class gid to precomputed
    :class:`~repro.linkbudget.budget.KernelStatics` columns aligned with
    this exact pair set; the budget kernel then skips its fspl, gas, and
    cloud-sine evaluations bit-identically.
    """
    if sat_idx.size == 0:
        return _empty_columns()
    num_sats, num_stations = len(satellites), len(network)

    # Weather once per involved station, as in the scalar path's cache.
    # Involved stations via a bincount-style flag pass: gs_idx is bounded
    # by the (small) station count, so this avoids sorting the pair list.
    # An identically-clear provider skips the oracle loop: every sample
    # would be exactly zero.
    if getattr(forecast, "always_clear", False):
        rain = np.zeros(num_stations)
        cloud = np.zeros(num_stations)
    elif weather_memo is not None:
        rain, cloud = weather_memo.station_weather(
            network, forecast, gs_idx, when
        )
    else:
        rain = np.zeros(num_stations)
        cloud = np.zeros(num_stations)
        involved = np.zeros(num_stations, dtype=bool)
        involved[gs_idx] = True
        for j in np.flatnonzero(involved).tolist():
            station = network[j]
            sample = forecast(
                station.latitude_deg, station.longitude_deg, when
            )
            rain[j] = sample.rain_rate_mm_h
            cloud[j] = sample.cloud_water_kg_m2

    # Group pairs by budget hardware class; the paper's scenarios collapse
    # to one or two classes, so the kernel runs once or twice per instant.
    # The class of a pair never changes, so the PairGroupCache resolves
    # previously-seen pairs with one fancy index (and the window index
    # pre-resolves every pair it will ever emit at build time).
    if pair_groups is None:
        pair_groups = PairGroupCache(num_sats, num_stations)
    if pair_static is not None:
        station_lat, station_alt, gids = pair_static
    else:
        gids = pair_groups.gid[sat_idx, gs_idx]
        unresolved = np.nonzero(gids < 0)[0]
        if unresolved.size:
            sat_list = sat_idx.tolist()
            gs_list = gs_idx.tolist()
            for p in unresolved.tolist():
                i, j = sat_list[p], gs_list[p]
                budget = link_budget_for(satellites[i], j)
                gid = _budget_group_id(budget)
                pair_groups.gid[i, j] = gid
                pair_groups.budget_of.setdefault(gid, budget)
                gids[p] = gid
        station_lat = geometry._station_lat_deg[gs_idx]
        station_alt = geometry._station_alt_km[gs_idx]

    pair_count = sat_idx.size
    gid_lo = int(gids.min())
    gid_hi = int(gids.max())
    if gid_lo == gid_hi:
        # Single hardware class (the common case): evaluate the whole
        # pair set in one kernel call, no group masking or scatters.
        budget = pair_groups.budget_of[gid_lo]
        static = (
            kernel_static.get(gid_lo) if kernel_static is not None else None
        )
        result = budget.evaluate_batch(
            range_km=pair_range,
            elevation_deg=pair_elevation,
            station_latitude_deg=station_lat,
            rain_rate_mm_h=rain[gs_idx],
            cloud_water_kg_m2=cloud[gs_idx],
            station_altitude_km=station_alt,
            static=static,
        )
        closes = result.closes
        bitrate = result.bitrate_bps
        required_esn0 = result.required_esn0_db
    else:
        closes = np.zeros(pair_count, dtype=bool)
        bitrate = np.zeros(pair_count)
        required_esn0 = np.full(pair_count, -100.0)
        present = np.flatnonzero(
            np.bincount(gids - gid_lo, minlength=gid_hi - gid_lo + 1)
        )
        for gid in (present + gid_lo).tolist():
            budget = pair_groups.budget_of[gid]
            pos = np.nonzero(gids == gid)[0]
            stations_of = gs_idx[pos]
            static = None
            if kernel_static is not None:
                full = kernel_static.get(gid)
                if full is not None:
                    static = full.take(pos)
            result = budget.evaluate_batch(
                range_km=pair_range[pos],
                elevation_deg=pair_elevation[pos],
                station_latitude_deg=station_lat[pos],
                rain_rate_mm_h=rain[stations_of],
                cloud_water_kg_m2=cloud[stations_of],
                station_altitude_km=station_alt[pos],
                static=static,
            )
            closes[pos] = result.closes
            bitrate[pos] = result.bitrate_bps
            required_esn0[pos] = result.required_esn0_db

    # Value pricing.  Value functions with a vectorized ``edge_values``
    # (latency, throughput) price all closing pairs against the fleet
    # queue profile in a few numpy passes; others fall back to the scalar
    # per-edge call.  Both produce bit-identical weights (the batch
    # kernels mirror the scalar arithmetic operation for operation).
    batch_values = getattr(value_function, "edge_values", None)
    if batch_values is not None and queue_profile is not None:
        keep = np.nonzero(closes)[0]
        if keep.size == 0:
            return _empty_columns()
        k_sat = sat_idx[keep]
        k_gs = gs_idx[keep]
        # Pairs arrive row-major, so k_sat is nondecreasing: dedupe by
        # extracting run starts instead of a full unique sort.
        run_start = np.empty(k_sat.size, dtype=bool)
        run_start[0] = True
        np.not_equal(k_sat[1:], k_sat[:-1], out=run_start[1:])
        queue_profile.refresh(k_sat[run_start])
        weights = batch_values(
            queue_profile, k_sat, bitrate[keep], when, step_s
        )
        if weight_factor is not None:
            weights = weights * np.asarray(weight_factor)[k_gs]
        pos = np.nonzero(weights > 0.0)[0]
        return EdgeColumns(
            k_sat[pos], k_gs[pos], weights[pos], bitrate[keep][pos],
            pair_elevation[keep][pos], pair_range[keep][pos],
            required_esn0[keep][pos],
        )

    edges = []
    stations = list(network)
    sat_list = sat_idx.tolist()
    gs_list = gs_idx.tolist()
    closes_list = closes.tolist()
    bitrate_list = bitrate.tolist()
    elev_list = pair_elevation.tolist()
    range_list = pair_range.tolist()
    esn0_list = required_esn0.tolist()
    for p in range(pair_count):
        if not closes_list[p]:
            continue
        i = sat_list[p]
        j = gs_list[p]
        weight = value_function.edge_value(
            satellites[i], stations[j].station_id, bitrate_list[p],
            when, step_s,
        )
        if weight_factor is not None:
            weight *= weight_factor[j]
        if weight <= 0.0:
            continue
        edges.append(
            ContactEdge(
                satellite_index=i,
                station_index=j,
                weight=weight,
                bitrate_bps=bitrate_list[p],
                elevation_deg=elev_list[p],
                range_km=range_list[p],
                required_esn0_db=esn0_list[p],
            )
        )
    return edges
