"""Time-instant contact graph construction (paper Sec. 3.1, steps 1-2).

At each scheduling instant we need the weighted bipartite graph between
satellites and ground stations: an edge exists when the satellite is above
the station's elevation mask and the station's constraint bitmap allows it;
the edge weight is the value function applied to the link-model bitrate.

Geometry is vectorized: station ECEF positions and ENU bases are
precomputed once, satellite positions once per instant, and the full
M x N elevation/range matrix comes from a handful of numpy operations --
this is what makes minute-cadence simulation of 259 x 173 tractable in
pure Python.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime
from typing import Callable

import numpy as np

from repro.groundstations.network import GroundStationNetwork
from repro.linkbudget.budget import LinkBudget
from repro.orbits.frames import geodetic_to_ecef
from repro.orbits.timebase import datetime_to_jd, gmst_rad
from repro.satellites.satellite import Satellite
from repro.scheduling.value_functions import ValueFunction
from repro.weather.cells import WeatherSample

#: Forecast oracle: (lat, lon, valid_at) -> WeatherSample, already bound to
#: an issue time by the caller.
ForecastFn = Callable[[float, float, datetime], WeatherSample]


@dataclass(frozen=True)
class ContactEdge:
    """One feasible satellite-station link at one instant."""

    satellite_index: int
    station_index: int
    weight: float
    bitrate_bps: float
    elevation_deg: float
    range_km: float
    #: Ideal Es/N0 threshold (dB) of the MODCOD the plan commits to; the
    #: transmission decodes iff the truth-weather Es/N0 clears this.
    required_esn0_db: float = -100.0


@dataclass
class ContactGraph:
    """The bipartite graph for one instant."""

    when: datetime
    edges: list[ContactEdge]
    num_satellites: int
    num_stations: int

    def edges_for_satellite(self, sat_index: int) -> list[ContactEdge]:
        return [e for e in self.edges if e.satellite_index == sat_index]

    def edges_for_station(self, gs_index: int) -> list[ContactEdge]:
        return [e for e in self.edges if e.station_index == gs_index]

    def weight_matrix(self) -> np.ndarray:
        """Dense M x N weight matrix (0 where no edge)."""
        mat = np.zeros((self.num_satellites, self.num_stations))
        for e in self.edges:
            mat[e.satellite_index, e.station_index] = e.weight
        return mat


class GeometryEngine:
    """Precomputed station geometry + vectorized visibility evaluation."""

    def __init__(self, network: GroundStationNetwork):
        self.network = network
        positions = []
        ups = []
        easts = []
        norths = []
        for st in network:
            positions.append(
                geodetic_to_ecef(st.latitude_deg, st.longitude_deg, st.altitude_km)
            )
            lat = math.radians(st.latitude_deg)
            lon = math.radians(st.longitude_deg)
            ups.append(
                [
                    math.cos(lat) * math.cos(lon),
                    math.cos(lat) * math.sin(lon),
                    math.sin(lat),
                ]
            )
            easts.append([-math.sin(lon), math.cos(lon), 0.0])
            norths.append(
                [
                    -math.sin(lat) * math.cos(lon),
                    -math.sin(lat) * math.sin(lon),
                    math.cos(lat),
                ]
            )
        self._station_ecef = np.array(positions)  # (N, 3)
        self._up = np.array(ups)
        self._east = np.array(easts)
        self._north = np.array(norths)
        self._min_elevation = np.array([st.min_elevation_deg for st in network])

    def visibility(
        self, satellites: list[Satellite], when: datetime
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(elevation_deg, range_km, visible_mask) matrices, shape (M, N)."""
        jd = datetime_to_jd(when)
        theta = gmst_rad(jd)
        cos_t, sin_t = math.cos(theta), math.sin(theta)
        rot = np.array(
            [[cos_t, sin_t, 0.0], [-sin_t, cos_t, 0.0], [0.0, 0.0, 1.0]]
        )
        sat_ecef = np.empty((len(satellites), 3))
        for i, sat in enumerate(satellites):
            pos_teme, _ = sat.position_teme(when)
            sat_ecef[i] = rot @ pos_teme
        # rel[i, j] = satellite i relative to station j.
        rel = sat_ecef[:, None, :] - self._station_ecef[None, :, :]
        rng = np.linalg.norm(rel, axis=2)
        up_component = np.einsum("ijk,jk->ij", rel, self._up)
        with np.errstate(invalid="ignore", divide="ignore"):
            elevation = np.degrees(np.arcsin(np.clip(up_component / rng, -1.0, 1.0)))
        visible = elevation > self._min_elevation[None, :]
        return elevation, rng, visible


def build_contact_graph(
    satellites: list[Satellite],
    network: GroundStationNetwork,
    when: datetime,
    value_function: ValueFunction,
    link_budget_for: Callable[[Satellite, int], LinkBudget],
    forecast: ForecastFn,
    step_s: float,
    geometry: GeometryEngine | None = None,
    require_current_plan: bool = False,
    plan_max_age_s: float = float("inf"),
    station_available: Callable[[int, datetime], bool] | None = None,
) -> ContactGraph:
    """Construct the weighted bipartite graph at ``when``.

    ``link_budget_for(sat, station_index)`` returns the budget calculator
    binding that pair (callers usually cache these).  When
    ``require_current_plan`` is set, satellites without a sufficiently
    fresh uplinked plan contribute no edges to receive-only stations --
    they do not know where to point -- but still get edges to
    transmit-capable stations, which can retask them in real time.
    ``station_available(station_index, when)`` lets callers exclude
    stations the scheduler knows to be down (announced maintenance).
    """
    if geometry is None:
        geometry = GeometryEngine(network)
    unavailable: set[int] = set()
    if station_available is not None:
        unavailable = {
            j for j in range(len(network)) if not station_available(j, when)
        }
    elevation, rng_km, visible = geometry.visibility(satellites, when)
    edges: list[ContactEdge] = []
    weather_cache: dict[int, WeatherSample] = {}
    for i, sat in enumerate(satellites):
        visible_stations = np.nonzero(visible[i])[0]
        if visible_stations.size == 0:
            continue
        has_plan = sat.has_current_plan(when, plan_max_age_s)
        for j in visible_stations:
            if int(j) in unavailable:
                continue
            station = network[int(j)]
            if not station.allows_satellite(i):
                continue
            if require_current_plan and not has_plan and not station.can_transmit:
                continue
            sample = weather_cache.get(int(j))
            if sample is None:
                sample = forecast(
                    station.latitude_deg, station.longitude_deg, when
                )
                weather_cache[int(j)] = sample
            budget = link_budget_for(sat, int(j))
            result = budget.evaluate(
                range_km=float(rng_km[i, j]),
                elevation_deg=float(elevation[i, j]),
                station_latitude_deg=station.latitude_deg,
                rain_rate_mm_h=sample.rain_rate_mm_h,
                cloud_water_kg_m2=sample.cloud_water_kg_m2,
                station_altitude_km=station.altitude_km,
            )
            if not result.closes:
                continue
            weight = value_function.edge_value(
                sat, station.station_id, result.bitrate_bps, when, step_s
            )
            if weight <= 0.0:
                continue
            edges.append(
                ContactEdge(
                    satellite_index=i,
                    station_index=int(j),
                    weight=weight,
                    bitrate_bps=result.bitrate_bps,
                    elevation_deg=float(elevation[i, j]),
                    range_km=float(rng_km[i, j]),
                    required_esn0_db=result.modcod.esn0_db,
                )
            )
    return ContactGraph(
        when=when,
        edges=edges,
        num_satellites=len(satellites),
        num_stations=len(network),
    )
