"""Public facade of the DGS reproduction library.

Most users need only this package:

* :class:`~repro.core.api.DGSNetwork` -- construct a network, ask it for
  contact graphs, schedules, pass predictions, link quality, plans, or a
  full data-transfer simulation.
* :mod:`repro.core.scenarios` -- one-call builders for the paper's
  evaluation scenarios (DGS, DGS(25%), the centralized baseline) and the
  variants the ablations sweep.
"""

from repro.core.api import DGSNetwork
from repro.core.scenarios import (
    Scenario,
    ScenarioResult,
    ScenarioSpec,
    build_paper_fleet,
    build_paper_weather,
    run_scenario,
)

__all__ = [
    "DGSNetwork",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "build_paper_fleet",
    "build_paper_weather",
    "run_scenario",
]
