"""Scenario builders for the paper's evaluation (Sec. 4).

One place defines "the paper's setup": 259 satellites generating
100 GB/day with the Planet-class X-band radio; 173 SatNOGS-like DGS
stations (or a 25% subset, or the 5-station baseline); the synthetic
weather month; stable matching at 60 s cadence.  Experiments and
benchmarks build everything through here so the variants differ in
exactly one dimension at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from repro.baseline.system import CentralizedBaseline
from repro.groundstations.network import GroundStationNetwork, satnogs_like_network
from repro.orbits.constellation import synthetic_leo_constellation
from repro.satellites.satellite import Satellite
from repro.scheduling.scheduler import MatcherName
from repro.scheduling.value_functions import (
    LatencyValue,
    ThroughputValue,
    ValueFunction,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation
from repro.simulation.metrics import SimulationReport
from repro.weather.cells import RainCellField
from repro.weather.provider import QuantizedWeatherCache, WeatherProvider

#: The paper's population sizes.
PAPER_SATELLITES = 259
PAPER_STATIONS = 173
PAPER_EPOCH = datetime(2020, 6, 1)


def build_paper_fleet(
    count: int = PAPER_SATELLITES,
    epoch: datetime = PAPER_EPOCH,
    generation_gb_per_day: float = 100.0,
    chunk_size_gb: float = 1.0,
    seed: int = 7,
) -> list[Satellite]:
    """The satellite fleet: synthetic EO constellation, 100 GB/day each."""
    tles = synthetic_leo_constellation(count, epoch, seed=seed)
    return [
        Satellite(
            tle=tle,
            generation_gb_per_day=generation_gb_per_day,
            chunk_size_gb=chunk_size_gb,
        )
        for tle in tles
    ]


def build_paper_weather(seed: int = 3,
                        intensity_scale: float = 1.0) -> WeatherProvider:
    """The synthetic weather month, memoized at 5-minute resolution."""
    return QuantizedWeatherCache(
        RainCellField(seed=seed, intensity_scale=intensity_scale)
    )


def value_function_by_name(name: str) -> ValueFunction:
    """'latency' (paper's Phi = t) or 'throughput' (Phi = |x|)."""
    if name == "latency":
        return LatencyValue()
    if name == "throughput":
        return ThroughputValue()
    raise ValueError(f"unknown value function {name!r}")


@dataclass
class ScenarioResult:
    """A finished scenario: its label, networks sizes, and the report."""

    label: str
    num_satellites: int
    num_stations: int
    report: SimulationReport


def make_dgs_scenario(
    station_fraction: float = 1.0,
    value: str = "latency",
    matcher: MatcherName = "stable",
    num_satellites: int = PAPER_SATELLITES,
    num_stations: int = PAPER_STATIONS,
    duration_s: float = 86400.0,
    step_s: float = 60.0,
    weather_seed: int = 3,
    network_seed: int = 11,
    fleet_seed: int = 7,
    use_forecast: bool = False,
    enforce_plan_distribution: bool = False,
    tx_capable_fraction: float = 0.1,
) -> tuple[list[Satellite], GroundStationNetwork, Simulation]:
    """Assemble a DGS simulation (full network or a fraction of it)."""
    fleet = build_paper_fleet(num_satellites, seed=fleet_seed)
    network = satnogs_like_network(
        num_stations, tx_capable_fraction=tx_capable_fraction, seed=network_seed
    )
    if station_fraction < 1.0:
        network = network.subset_fraction(station_fraction, seed=network_seed)
    weather = build_paper_weather(weather_seed)
    config = SimulationConfig(
        start=PAPER_EPOCH,
        duration_s=duration_s,
        step_s=step_s,
        matcher=matcher,
        use_forecast=use_forecast,
        enforce_plan_distribution=enforce_plan_distribution,
    )
    sim = Simulation(
        satellites=fleet,
        network=network,
        value_function=value_function_by_name(value),
        config=config,
        truth_weather=weather,
    )
    return fleet, network, sim


def make_baseline_scenario(
    value: str = "latency",
    matcher: MatcherName = "stable",
    num_satellites: int = PAPER_SATELLITES,
    duration_s: float = 86400.0,
    step_s: float = 60.0,
    weather_seed: int = 3,
    fleet_seed: int = 7,
    station_count: int = 5,
) -> tuple[list[Satellite], GroundStationNetwork, Simulation]:
    """Assemble the centralized-baseline simulation."""
    fleet = build_paper_fleet(num_satellites, seed=fleet_seed)
    network = CentralizedBaseline(station_count=station_count).network()
    weather = build_paper_weather(weather_seed)
    config = SimulationConfig(
        start=PAPER_EPOCH,
        duration_s=duration_s,
        step_s=step_s,
        matcher=matcher,
    )
    sim = Simulation(
        satellites=fleet,
        network=network,
        value_function=value_function_by_name(value),
        config=config,
        truth_weather=weather,
    )
    return fleet, network, sim


def run_scenario(label: str, sim: Simulation) -> ScenarioResult:
    """Run an assembled simulation into a labelled result."""
    report = sim.run()
    return ScenarioResult(
        label=label,
        num_satellites=len(sim.satellites),
        num_stations=len(sim.network),
        report=report,
    )
