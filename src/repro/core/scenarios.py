"""Scenario builders for the paper's evaluation (Sec. 4).

One place defines "the paper's setup": 259 satellites generating
100 GB/day with the Planet-class X-band radio; 173 SatNOGS-like DGS
stations (or a 25% subset, or the 5-station baseline); the synthetic
weather month; stable matching at 60 s cadence.  Experiments and
benchmarks build everything through here so the variants differ in
exactly one dimension at a time.

The one way in is :class:`ScenarioSpec`: a frozen, fully-serializable
description of a run.  ``ScenarioSpec.dgs(...)`` / ``.baseline(...)``
construct specs, ``spec.build()`` assembles the fleet/network/simulation
triple, and ``spec.run(label)`` executes it.  (The historical
``make_dgs_scenario`` / ``make_baseline_scenario`` helpers went through a
deprecation cycle and are gone.)
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, fields, replace
from datetime import datetime

from repro.baseline.system import CentralizedBaseline
from repro.groundstations.network import GroundStationNetwork, satnogs_like_network
from repro.obs import ObsConfig
from repro.orbits.constellation import synthetic_leo_constellation, walker_delta
from repro.satellites.satellite import Satellite
from repro.scheduling.scheduler import MatcherName
from repro.scheduling.value_functions import (
    LatencyValue,
    ThroughputValue,
    ValueFunction,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation
from repro.simulation.metrics import SimulationReport
from repro.weather.cells import RainCellField
from repro.weather.provider import QuantizedWeatherCache, WeatherProvider

#: The paper's population sizes.
PAPER_SATELLITES = 259
PAPER_STATIONS = 173
PAPER_EPOCH = datetime(2020, 6, 1)


def _auto_walker_planes(total_satellites: int) -> int:
    """Largest divisor of the shell size not exceeding its square root --
    the near-square plane/slot split a Walker shell defaults to."""
    for planes in range(int(math.isqrt(total_satellites)), 1, -1):
        if total_satellites % planes == 0:
            return planes
    return 1


def build_paper_fleet(
    count: int = PAPER_SATELLITES,
    epoch: datetime = PAPER_EPOCH,
    generation_gb_per_day: float = 100.0,
    chunk_size_gb: float = 1.0,
    seed: int = 7,
) -> list[Satellite]:
    """The satellite fleet: synthetic EO constellation, 100 GB/day each."""
    tles = synthetic_leo_constellation(count, epoch, seed=seed)
    return [
        Satellite(
            tle=tle,
            generation_gb_per_day=generation_gb_per_day,
            chunk_size_gb=chunk_size_gb,
        )
        for tle in tles
    ]


def build_paper_weather(seed: int = 3,
                        intensity_scale: float = 1.0) -> WeatherProvider:
    """The synthetic weather month, memoized at 5-minute resolution."""
    return QuantizedWeatherCache(
        RainCellField(seed=seed, intensity_scale=intensity_scale)
    )


def build_storm_weather(
    seed: int = 3,
    intensity_scale: float = 1.0,
    storm_seed: int = 17,
    storm_rate: float = 1.0,
    storm_speed: float = 1.0,
) -> WeatherProvider:
    """The weather month plus advected storm tracks, memoized.

    Composition order matters for reproducibility: storms add on top of
    the same rain-cell field ``build_paper_weather`` makes, so away from
    every storm the two providers return bit-identical samples.
    """
    from repro.weather.storms import StormField, StormWeatherProvider

    base = RainCellField(seed=seed, intensity_scale=intensity_scale)
    storms = StormField(
        seed=storm_seed, rate=storm_rate, speed_scale=storm_speed
    )
    return QuantizedWeatherCache(StormWeatherProvider(base, storms))


def value_function_by_name(name: str) -> ValueFunction:
    """'latency' (Phi = t), 'throughput' (Phi = |x|), or 'deadline'.

    The bare ``deadline`` instance prices SLA urgency only; tenant
    weights and quota discounting need the demand layer, which
    ``ScenarioSpec.build`` wires in when the spec has tenants.
    """
    if name == "latency":
        return LatencyValue()
    if name == "throughput":
        return ThroughputValue()
    if name == "deadline":
        from repro.scheduling.value_functions import DeadlineSlaValue

        return DeadlineSlaValue()
    raise ValueError(f"unknown value function {name!r}")


@dataclass
class ScenarioResult:
    """A finished scenario: its label, networks sizes, and the report."""

    label: str
    num_satellites: int
    num_stations: int
    report: SimulationReport


@dataclass
class Scenario:
    """An assembled scenario: the fleet/network pair and its simulation."""

    spec: "ScenarioSpec"
    fleet: list[Satellite]
    network: GroundStationNetwork
    simulation: Simulation

    def run(self, label: str | None = None) -> ScenarioResult:
        """Execute the simulation into a labelled result."""
        report = self.simulation.run()
        return ScenarioResult(
            label=label if label is not None else self.spec.label(),
            num_satellites=len(self.fleet),
            num_stations=len(self.network),
            report=report,
        )

    # Tuple compatibility: the legacy builders returned (fleet, network,
    # sim), and a lot of call sites unpack exactly that.
    def __iter__(self):
        return iter((self.fleet, self.network, self.simulation))


@dataclass(frozen=True)
class ScenarioSpec:
    """A frozen, reproducible description of one paper scenario.

    ``kind`` selects the ground segment: ``"dgs"`` (SatNOGS-like
    distributed network, optionally a fraction of it) or ``"baseline"``
    (the centralized 5-dish operator).  Everything else is a knob with
    the paper's defaults.  Build with :meth:`build`, or run directly with
    :meth:`run`.
    """

    kind: str = "dgs"
    value: str = "latency"
    matcher: MatcherName = "stable"
    num_satellites: int = PAPER_SATELLITES
    num_stations: int = PAPER_STATIONS
    station_fraction: float = 1.0
    #: Baseline-only: how many centralized dishes.
    station_count: int = 5
    duration_s: float = 86400.0
    step_s: float = 60.0
    weather_seed: int = 3
    network_seed: int = 11
    fleet_seed: int = 7
    use_forecast: bool = False
    enforce_plan_distribution: bool = False
    tx_capable_fraction: float = 0.1
    #: Rain intensity multiplier on the synthetic weather month
    #: (0 = clear sky, 1 = the paper's month, >1 = stormier).
    weather_intensity: float = 1.0
    #: Weather process: ``cells`` (the stationary-statistics rain-cell
    #: month) or ``storms`` (the same month plus seeded, advected
    #: synoptic storm tracks -- moving regional wipeouts).
    weather: str = "cells"
    #: Storm-track knobs (ignored unless ``weather="storms"``): the storm
    #: process seed, the multiplier on storm births per day, and the
    #: multiplier on track speeds.
    storm_seed: int = 17
    storm_rate: float = 1.0
    storm_speed: float = 1.0
    #: Scheduler family: ``downlink`` (the paper's per-instant matcher),
    #: ``horizon`` (receding-horizon lookahead), or ``beamforming``
    #: (power-split multi-beam stations).
    scheduler: str = "downlink"
    #: Horizon-scheduler lookahead window, in steps (ignored otherwise).
    horizon_steps: int = 1
    #: Beamforming-scheduler beams per station (ignored otherwise).
    beams: int = 1
    #: Override the fleet's downlink carrier (None = the radio's default
    #: X-band); Ku/Ka sweeps set 14.0 / 26.5.
    frequency_ghz: float | None = None
    #: ``live`` per-instant matching, ``planned`` plan-following
    #: execution (Sec. 3's operational model), or ``diversity``: live
    #: matching where up to ``diversity_receivers`` stations listen to
    #: each pass and the backend merges their independently-errored
    #: copies (Sec. 3.3's hybrid-GS reception).
    execution_mode: str = "live"
    #: Diversity-mode knobs (ignored otherwise): total receivers per pass
    #: (primary + extra listeners) and the decode-draw seed.
    diversity_receivers: int = 2
    diversity_seed: int = 19
    #: Seeded fault-injection intensity for :meth:`FaultSchedule.generate`
    #: (0 = healthy run, no fault layer attached).
    fault_intensity: float = 0.0
    fault_seed: int = 7
    faults_announced: bool = True
    #: Fleet synthesis: ``paper`` (the SatNOGS-like EO mix) or ``walker``
    #: (a deterministic Walker-delta shell -- the mega-constellation
    #: scaling fleets).
    constellation: str = "paper"
    #: Walker-shell geometry (ignored for ``paper``).  ``walker_planes=0``
    #: picks the near-square plane count automatically.
    walker_planes: int = 0
    walker_phasing: int = 1
    walker_inclination_deg: float = 53.0
    walker_altitude_km: float = 550.0
    #: Scaling knobs, forwarded to :class:`SimulationConfig`: coarse-grid
    #: candidate prefiltering (bit-identical either way), ephemeris
    #: storage dtype, and windowed ephemeris streaming (0 = monolithic).
    spatial_culling: bool = True
    ephemeris_dtype: str = "float64"
    ephemeris_window_steps: int = 0
    #: Drive the per-step loop from the precomputed contact-window index
    #: (bit-identical reports either way; ``False`` pins the per-step
    #: culled/dense reference paths).  Only the base downlink scheduler
    #: consumes the index, so horizon/beamforming specs skip the build.
    contact_windows: bool = True
    #: Multi-tenant demand: a tuple of :class:`repro.demand.Tenant` (or
    #: their dicts, normalized on construction).  None = the legacy
    #: uniform single-tenant stream, bit-identical to builds without the
    #: demand layer.
    tenants: "tuple | None" = None
    #: Request granularity: how many tasking windows per satellite-day
    #: the capture stream is cut into (tenancy switches at window
    #: boundaries).  Ignored without tenants.
    requests_per_day: int = 24
    demand_seed: int = 13
    observability: ObsConfig | None = field(default=None, compare=False)

    def __post_init__(self):
        if self.kind not in ("dgs", "baseline"):
            raise ValueError(f"unknown scenario kind {self.kind!r}")
        if not 0.0 < self.station_fraction <= 1.0:
            raise ValueError(
                f"station_fraction must be in (0, 1], got {self.station_fraction}"
            )
        if self.scheduler not in ("downlink", "horizon", "beamforming"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.scheduler == "horizon" and self.horizon_steps < 1:
            raise ValueError("horizon_steps must be >= 1")
        if self.scheduler == "beamforming" and self.beams < 1:
            raise ValueError("beams must be >= 1")
        if self.weather_intensity < 0.0:
            raise ValueError("weather_intensity must be >= 0")
        if self.weather not in ("cells", "storms"):
            raise ValueError(f"unknown weather process {self.weather!r}")
        if self.storm_rate < 0.0:
            raise ValueError("storm_rate must be >= 0")
        if self.storm_speed < 0.0:
            raise ValueError("storm_speed must be >= 0")
        if self.diversity_receivers < 1:
            raise ValueError("diversity_receivers must be >= 1")
        if self.execution_mode == "diversity" and (
            self.horizon_steps > 1 or self.beams > 1
        ):
            raise ValueError(
                "diversity execution requires the downlink scheduler "
                "(horizon_steps=1, beams=1)"
            )
        if not 0.0 <= self.fault_intensity <= 1.0:
            raise ValueError(
                f"fault_intensity must be in [0, 1], got {self.fault_intensity}"
            )
        if self.constellation not in ("paper", "walker"):
            raise ValueError(f"unknown constellation {self.constellation!r}")
        if self.walker_planes < 0:
            raise ValueError("walker_planes must be >= 0 (0 = auto)")
        if self.ephemeris_dtype not in ("float64", "float32"):
            raise ValueError(
                f"ephemeris_dtype must be 'float64' or 'float32', "
                f"got {self.ephemeris_dtype!r}"
            )
        if self.ephemeris_window_steps < 0:
            raise ValueError("ephemeris_window_steps must be >= 0")
        if self.requests_per_day < 1:
            raise ValueError("requests_per_day must be >= 1")
        if self.tenants is not None:
            from repro.demand import Tenant

            normalized = tuple(
                t if isinstance(t, Tenant) else Tenant.from_dict(t)
                for t in self.tenants
            )
            if not normalized:
                raise ValueError("tenants must be non-empty or None")
            object.__setattr__(self, "tenants", normalized)
        if self.value == "deadline" and self.tenants is None:
            raise ValueError(
                "value='deadline' needs tenants= (the SLA pricing has "
                "nothing to price on the uniform single-tenant stream)"
            )

    # -- constructors -------------------------------------------------------

    @classmethod
    def dgs(cls, **kwargs) -> "ScenarioSpec":
        """A DGS scenario spec (full network or a station fraction)."""
        return cls(kind="dgs", **kwargs)

    @classmethod
    def baseline(cls, **kwargs) -> "ScenarioSpec":
        """The centralized-baseline scenario spec."""
        kwargs.setdefault("station_fraction", 1.0)
        return cls(kind="baseline", **kwargs)

    # -- identity -----------------------------------------------------------

    def label(self) -> str:
        """A short human label: 'dgs25-L', 'baseline-T', 'dgs-D', ..."""
        prefix = self.kind
        if self.kind == "dgs" and self.station_fraction < 1.0:
            prefix = f"dgs{round(self.station_fraction * 100):d}"
        suffix = {"latency": "L", "deadline": "D"}.get(self.value, "T")
        return f"{prefix}-{suffix}"

    def seeds(self) -> dict[str, int]:
        """All RNG seeds the scenario consumes (for the run manifest)."""
        seeds = {
            "fleet": self.fleet_seed,
            "weather": self.weather_seed,
            "network": self.network_seed,
        }
        if self.weather == "storms":
            seeds["storm"] = self.storm_seed
        if self.execution_mode == "diversity":
            seeds["diversity"] = self.diversity_seed
        if self.fault_intensity > 0.0:
            seeds["faults"] = self.fault_seed
        if self.tenants is not None:
            seeds["demand"] = self.demand_seed
        return seeds

    # -- serialization ------------------------------------------------------

    @classmethod
    def _serialized_fields(cls) -> tuple[str, ...]:
        """Fields that cross process/checkpoint boundaries.

        ``observability`` stays out: it is per-run plumbing (trace paths
        differ per worker), not part of the scenario's identity, and is
        excluded from equality for the same reason.
        """
        return tuple(
            f.name for f in fields(cls) if f.name != "observability"
        )

    def to_dict(self) -> dict:
        """JSON-compatible dict of every identity field (no observability)."""
        raw = {name: getattr(self, name)
               for name in self._serialized_fields()}
        if raw["tenants"] is not None:
            raw["tenants"] = [t.to_dict() for t in raw["tenants"]]
        return raw

    @classmethod
    def from_dict(cls, raw: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output; strict on keys."""
        unknown = set(raw) - set(cls._serialized_fields())
        if unknown:
            raise ValueError(
                f"unknown ScenarioSpec fields: {sorted(unknown)}"
            )
        return cls(**raw)

    def config_sha256(self) -> str:
        """Content hash of the spec: the sweep runner's checkpoint key."""
        from repro.obs.manifest import config_digest

        return config_digest(self.to_dict())

    def derive_seeds(self, sweep_seed: int) -> "ScenarioSpec":
        """Replace every RNG seed with one derived from ``sweep_seed``.

        The derivation hashes (sweep seed, the spec's seed-free identity,
        seed name), so a grid re-run under a different sweep seed draws
        fresh-but-reproducible randomness per cell while cells that differ
        only in their seeds collapse onto the same derived values.
        """
        identity = {
            name: value for name, value in self.to_dict().items()
            if not name.endswith("_seed")
        }
        from repro.obs.manifest import config_digest

        base = config_digest(identity)

        def derived(name: str) -> int:
            digest = hashlib.sha256(
                f"{sweep_seed}:{base}:{name}".encode("utf-8")
            ).digest()
            return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF

        return replace(
            self,
            fleet_seed=derived("fleet"),
            weather_seed=derived("weather"),
            network_seed=derived("network"),
            fault_seed=derived("faults"),
            demand_seed=derived("demand"),
            storm_seed=derived("storm"),
            diversity_seed=derived("diversity"),
        )

    # -- assembly -----------------------------------------------------------

    def fleet_identity(self) -> tuple:
        """The fields that determine the fleet's TLE set.

        Two specs with equal identities build orbit-identical fleets (and
        therefore share one ephemeris table); the sweep runner's
        shared-memory export groups cells by this.
        """
        return (
            self.constellation, self.num_satellites, self.fleet_seed,
            self.walker_planes, self.walker_phasing,
            self.walker_inclination_deg, self.walker_altitude_km,
        )

    def build_fleet(self) -> list[Satellite]:
        """Synthesize the satellite fleet alone (no network/simulation)."""
        if self.constellation == "walker":
            planes = self.walker_planes or _auto_walker_planes(
                self.num_satellites
            )
            tles = walker_delta(
                self.num_satellites, planes, self.walker_phasing % planes,
                self.walker_inclination_deg, self.walker_altitude_km,
                PAPER_EPOCH,
            )
            return [
                Satellite(
                    tle=tle, generation_gb_per_day=100.0, chunk_size_gb=1.0
                )
                for tle in tles
            ]
        return build_paper_fleet(self.num_satellites, seed=self.fleet_seed)

    def build(self) -> Scenario:
        """Assemble the fleet, ground network, and simulation."""
        fleet = self.build_fleet()
        if self.frequency_ghz is not None:
            from repro.linkbudget.budget import RadioConfig

            radio = RadioConfig(frequency_ghz=self.frequency_ghz)
            for sat in fleet:
                sat.radio = radio
        if self.kind == "baseline":
            network = CentralizedBaseline(
                station_count=self.station_count
            ).network()
        else:
            network = satnogs_like_network(
                self.num_stations,
                tx_capable_fraction=self.tx_capable_fraction,
                seed=self.network_seed,
            )
            if self.station_fraction < 1.0:
                network = network.subset_fraction(
                    self.station_fraction, seed=self.network_seed
                )
        if self.weather == "storms":
            weather = build_storm_weather(
                self.weather_seed,
                intensity_scale=self.weather_intensity,
                storm_seed=self.storm_seed,
                storm_rate=self.storm_rate,
                storm_speed=self.storm_speed,
            )
        else:
            weather = build_paper_weather(
                self.weather_seed, intensity_scale=self.weather_intensity
            )
        config = SimulationConfig(
            start=PAPER_EPOCH,
            duration_s=self.duration_s,
            step_s=self.step_s,
            matcher=self.matcher,
            use_forecast=self.use_forecast,
            enforce_plan_distribution=self.enforce_plan_distribution,
            execution_mode=self.execution_mode,
            diversity_receivers=self.diversity_receivers,
            diversity_seed=self.diversity_seed,
            spatial_culling=self.spatial_culling,
            ephemeris_dtype=self.ephemeris_dtype,
            ephemeris_window_steps=self.ephemeris_window_steps,
            # The horizon/beamforming replacements (_attach_scheduler)
            # never consume the index; skip the build for them.
            contact_windows=self.contact_windows and not (
                (self.scheduler == "horizon" and self.horizon_steps > 1)
                or (self.scheduler == "beamforming" and self.beams > 1)
            ),
        )
        observability = self.observability
        if observability is not None and not observability.seeds:
            # Stamp the scenario's seeds into the manifest automatically.
            observability = replace(observability, seeds=self.seeds())
        faults = None
        if self.fault_intensity > 0.0:
            from repro.faults import FaultSchedule

            faults = FaultSchedule.generate(
                station_ids=[st.station_id for st in network],
                satellite_ids=[s.satellite_id for s in fleet],
                start=config.start,
                horizon_s=self.duration_s,
                intensity=self.fault_intensity,
                seed=self.fault_seed,
            )
        demand = None
        if self.tenants is not None:
            from repro.demand import DemandLayer

            demand = DemandLayer.build(
                tenants=self.tenants,
                requests_per_day=self.requests_per_day,
                seed=self.demand_seed,
                start=config.start,
            )
        if self.value == "deadline":
            from repro.scheduling.value_functions import DeadlineSlaValue

            value_function: ValueFunction = DeadlineSlaValue(
                tenants=self.tenants, accountant=demand.accountant
            )
        else:
            value_function = value_function_by_name(self.value)
        sim = Simulation(
            satellites=fleet,
            network=network,
            value_function=value_function,
            config=config,
            truth_weather=weather,
            faults=faults,
            faults_announced=self.faults_announced,
            demand=demand,
            observability=observability,
        )
        self._attach_scheduler(sim)
        return Scenario(spec=self, fleet=fleet, network=network, simulation=sim)

    def _attach_scheduler(self, sim: Simulation) -> None:
        """Swap in the horizon/beamforming scheduler families when asked.

        Mirrors how the ablations historically wrapped the base scheduler:
        the replacement is built from the downlink scheduler's own wiring,
        so a ``downlink`` spec is untouched (bit-identical to the paper
        path) and H=1 / beams=1 degenerate to it as well.
        """
        base = sim.scheduler
        if self.scheduler == "horizon" and self.horizon_steps > 1:
            from repro.scheduling.horizon import HorizonScheduler

            sim.scheduler = HorizonScheduler(
                base.satellites, base.network, base.value_function,
                matcher=base.matcher_name, weather=base.weather,
                step_s=base.step_s, horizon_steps=self.horizon_steps,
                replan_steps=max(1, self.horizon_steps // 2),
            )
        elif self.scheduler == "beamforming" and self.beams > 1:
            from repro.scheduling.beamforming import BeamformingScheduler

            sim.scheduler = BeamformingScheduler(
                base.satellites, base.network, base.value_function,
                matcher=base.matcher_name, weather=base.weather,
                step_s=base.step_s, beams=self.beams,
            )

    def run(self, label: str | None = None) -> ScenarioResult:
        """Assemble and execute in one call."""
        return self.build().run(label)


# -- retired legacy builders -------------------------------------------------

_REMOVED_BUILDERS = {
    "make_dgs_scenario": "ScenarioSpec.dgs(...).build()",
    "make_baseline_scenario": "ScenarioSpec.baseline(...).build()",
}


def __getattr__(name: str):
    """Actionable errors for the removed PR-3 deprecation shims."""
    if name in _REMOVED_BUILDERS:
        raise AttributeError(
            f"{name} was removed after its deprecation cycle; use "
            f"{_REMOVED_BUILDERS[name]} (the Scenario it returns still "
            "unpacks as a (fleet, network, simulation) tuple)"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def run_scenario(label: str, sim: Simulation) -> ScenarioResult:
    """Run an assembled simulation into a labelled result."""
    report = sim.run()
    return ScenarioResult(
        label=label,
        num_satellites=len(sim.satellites),
        num_stations=len(sim.network),
        report=report,
    )
