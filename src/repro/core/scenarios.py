"""Scenario builders for the paper's evaluation (Sec. 4).

One place defines "the paper's setup": 259 satellites generating
100 GB/day with the Planet-class X-band radio; 173 SatNOGS-like DGS
stations (or a 25% subset, or the 5-station baseline); the synthetic
weather month; stable matching at 60 s cadence.  Experiments and
benchmarks build everything through here so the variants differ in
exactly one dimension at a time.

The one way in is :class:`ScenarioSpec`: a frozen, fully-serializable
description of a run.  ``ScenarioSpec.dgs(...)`` / ``.baseline(...)``
construct specs, ``spec.build()`` assembles the fleet/network/simulation
triple, and ``spec.run(label)`` executes it.  The historical
``make_dgs_scenario`` / ``make_baseline_scenario`` helpers remain as thin
deprecation shims over the spec.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from datetime import datetime

from repro.baseline.system import CentralizedBaseline
from repro.groundstations.network import GroundStationNetwork, satnogs_like_network
from repro.obs import ObsConfig
from repro.orbits.constellation import synthetic_leo_constellation
from repro.satellites.satellite import Satellite
from repro.scheduling.scheduler import MatcherName
from repro.scheduling.value_functions import (
    LatencyValue,
    ThroughputValue,
    ValueFunction,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation
from repro.simulation.metrics import SimulationReport
from repro.weather.cells import RainCellField
from repro.weather.provider import QuantizedWeatherCache, WeatherProvider

#: The paper's population sizes.
PAPER_SATELLITES = 259
PAPER_STATIONS = 173
PAPER_EPOCH = datetime(2020, 6, 1)


def build_paper_fleet(
    count: int = PAPER_SATELLITES,
    epoch: datetime = PAPER_EPOCH,
    generation_gb_per_day: float = 100.0,
    chunk_size_gb: float = 1.0,
    seed: int = 7,
) -> list[Satellite]:
    """The satellite fleet: synthetic EO constellation, 100 GB/day each."""
    tles = synthetic_leo_constellation(count, epoch, seed=seed)
    return [
        Satellite(
            tle=tle,
            generation_gb_per_day=generation_gb_per_day,
            chunk_size_gb=chunk_size_gb,
        )
        for tle in tles
    ]


def build_paper_weather(seed: int = 3,
                        intensity_scale: float = 1.0) -> WeatherProvider:
    """The synthetic weather month, memoized at 5-minute resolution."""
    return QuantizedWeatherCache(
        RainCellField(seed=seed, intensity_scale=intensity_scale)
    )


def value_function_by_name(name: str) -> ValueFunction:
    """'latency' (paper's Phi = t) or 'throughput' (Phi = |x|)."""
    if name == "latency":
        return LatencyValue()
    if name == "throughput":
        return ThroughputValue()
    raise ValueError(f"unknown value function {name!r}")


@dataclass
class ScenarioResult:
    """A finished scenario: its label, networks sizes, and the report."""

    label: str
    num_satellites: int
    num_stations: int
    report: SimulationReport


@dataclass
class Scenario:
    """An assembled scenario: the fleet/network pair and its simulation."""

    spec: "ScenarioSpec"
    fleet: list[Satellite]
    network: GroundStationNetwork
    simulation: Simulation

    def run(self, label: str | None = None) -> ScenarioResult:
        """Execute the simulation into a labelled result."""
        report = self.simulation.run()
        return ScenarioResult(
            label=label if label is not None else self.spec.label(),
            num_satellites=len(self.fleet),
            num_stations=len(self.network),
            report=report,
        )

    # Tuple compatibility: the legacy builders returned (fleet, network,
    # sim), and a lot of call sites unpack exactly that.
    def __iter__(self):
        return iter((self.fleet, self.network, self.simulation))


@dataclass(frozen=True)
class ScenarioSpec:
    """A frozen, reproducible description of one paper scenario.

    ``kind`` selects the ground segment: ``"dgs"`` (SatNOGS-like
    distributed network, optionally a fraction of it) or ``"baseline"``
    (the centralized 5-dish operator).  Everything else is a knob with
    the paper's defaults.  Build with :meth:`build`, or run directly with
    :meth:`run`.
    """

    kind: str = "dgs"
    value: str = "latency"
    matcher: MatcherName = "stable"
    num_satellites: int = PAPER_SATELLITES
    num_stations: int = PAPER_STATIONS
    station_fraction: float = 1.0
    #: Baseline-only: how many centralized dishes.
    station_count: int = 5
    duration_s: float = 86400.0
    step_s: float = 60.0
    weather_seed: int = 3
    network_seed: int = 11
    fleet_seed: int = 7
    use_forecast: bool = False
    enforce_plan_distribution: bool = False
    tx_capable_fraction: float = 0.1
    observability: ObsConfig | None = field(default=None, compare=False)

    def __post_init__(self):
        if self.kind not in ("dgs", "baseline"):
            raise ValueError(f"unknown scenario kind {self.kind!r}")
        if not 0.0 < self.station_fraction <= 1.0:
            raise ValueError(
                f"station_fraction must be in (0, 1], got {self.station_fraction}"
            )

    # -- constructors -------------------------------------------------------

    @classmethod
    def dgs(cls, **kwargs) -> "ScenarioSpec":
        """A DGS scenario spec (full network or a station fraction)."""
        return cls(kind="dgs", **kwargs)

    @classmethod
    def baseline(cls, **kwargs) -> "ScenarioSpec":
        """The centralized-baseline scenario spec."""
        kwargs.setdefault("station_fraction", 1.0)
        return cls(kind="baseline", **kwargs)

    # -- identity -----------------------------------------------------------

    def label(self) -> str:
        """A short human label: 'dgs25-L', 'baseline-T', 'dgs-L', ..."""
        prefix = self.kind
        if self.kind == "dgs" and self.station_fraction < 1.0:
            prefix = f"dgs{round(self.station_fraction * 100):d}"
        suffix = "L" if self.value == "latency" else "T"
        return f"{prefix}-{suffix}"

    def seeds(self) -> dict[str, int]:
        """All RNG seeds the scenario consumes (for the run manifest)."""
        return {
            "fleet": self.fleet_seed,
            "weather": self.weather_seed,
            "network": self.network_seed,
        }

    # -- assembly -----------------------------------------------------------

    def build(self) -> Scenario:
        """Assemble the fleet, ground network, and simulation."""
        fleet = build_paper_fleet(self.num_satellites, seed=self.fleet_seed)
        if self.kind == "baseline":
            network = CentralizedBaseline(
                station_count=self.station_count
            ).network()
        else:
            network = satnogs_like_network(
                self.num_stations,
                tx_capable_fraction=self.tx_capable_fraction,
                seed=self.network_seed,
            )
            if self.station_fraction < 1.0:
                network = network.subset_fraction(
                    self.station_fraction, seed=self.network_seed
                )
        weather = build_paper_weather(self.weather_seed)
        config = SimulationConfig(
            start=PAPER_EPOCH,
            duration_s=self.duration_s,
            step_s=self.step_s,
            matcher=self.matcher,
            use_forecast=self.use_forecast,
            enforce_plan_distribution=self.enforce_plan_distribution,
        )
        observability = self.observability
        if observability is not None and not observability.seeds:
            # Stamp the scenario's seeds into the manifest automatically.
            observability = replace(observability, seeds=self.seeds())
        sim = Simulation(
            satellites=fleet,
            network=network,
            value_function=value_function_by_name(self.value),
            config=config,
            truth_weather=weather,
            observability=observability,
        )
        return Scenario(spec=self, fleet=fleet, network=network, simulation=sim)

    def run(self, label: str | None = None) -> ScenarioResult:
        """Assemble and execute in one call."""
        return self.build().run(label)


# -- legacy builders (deprecation shims over ScenarioSpec) -------------------


def make_dgs_scenario(
    station_fraction: float = 1.0,
    value: str = "latency",
    matcher: MatcherName = "stable",
    num_satellites: int = PAPER_SATELLITES,
    num_stations: int = PAPER_STATIONS,
    duration_s: float = 86400.0,
    step_s: float = 60.0,
    weather_seed: int = 3,
    network_seed: int = 11,
    fleet_seed: int = 7,
    use_forecast: bool = False,
    enforce_plan_distribution: bool = False,
    tx_capable_fraction: float = 0.1,
) -> tuple[list[Satellite], GroundStationNetwork, Simulation]:
    """Deprecated: use ``ScenarioSpec.dgs(...).build()``."""
    warnings.warn(
        "make_dgs_scenario is deprecated; use ScenarioSpec.dgs(...).build()",
        DeprecationWarning, stacklevel=2,
    )
    scenario = ScenarioSpec.dgs(
        station_fraction=station_fraction,
        value=value,
        matcher=matcher,
        num_satellites=num_satellites,
        num_stations=num_stations,
        duration_s=duration_s,
        step_s=step_s,
        weather_seed=weather_seed,
        network_seed=network_seed,
        fleet_seed=fleet_seed,
        use_forecast=use_forecast,
        enforce_plan_distribution=enforce_plan_distribution,
        tx_capable_fraction=tx_capable_fraction,
    ).build()
    return scenario.fleet, scenario.network, scenario.simulation


def make_baseline_scenario(
    value: str = "latency",
    matcher: MatcherName = "stable",
    num_satellites: int = PAPER_SATELLITES,
    duration_s: float = 86400.0,
    step_s: float = 60.0,
    weather_seed: int = 3,
    fleet_seed: int = 7,
    station_count: int = 5,
) -> tuple[list[Satellite], GroundStationNetwork, Simulation]:
    """Deprecated: use ``ScenarioSpec.baseline(...).build()``."""
    warnings.warn(
        "make_baseline_scenario is deprecated; "
        "use ScenarioSpec.baseline(...).build()",
        DeprecationWarning, stacklevel=2,
    )
    scenario = ScenarioSpec.baseline(
        value=value,
        matcher=matcher,
        num_satellites=num_satellites,
        duration_s=duration_s,
        step_s=step_s,
        weather_seed=weather_seed,
        fleet_seed=fleet_seed,
        station_count=station_count,
    ).build()
    return scenario.fleet, scenario.network, scenario.simulation


def run_scenario(label: str, sim: Simulation) -> ScenarioResult:
    """Run an assembled simulation into a labelled result."""
    report = sim.run()
    return ScenarioResult(
        label=label,
        num_satellites=len(sim.satellites),
        num_stations=len(sim.network),
        report=report,
    )
