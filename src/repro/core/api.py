"""DGSNetwork: the one-object public API.

Wraps a satellite fleet, a ground-station network, a weather source, and a
value function into the operations a ground-segment operator performs:
inspect visibility, predict passes, estimate link quality, compute a
schedule or an uplink plan, and run data-transfer simulations.
"""

from __future__ import annotations

from datetime import datetime, timedelta

from repro.groundstations.network import GroundStationNetwork
from repro.groundstations.station import GroundStation
from repro.linkbudget.budget import LinkBudget, LinkResult
from repro.orbits.frames import teme_to_ecef
from repro.orbits.passes import ContactWindow, PassPredictor
from repro.orbits.timebase import datetime_to_jd
from repro.orbits.topocentric import Topocentric, look_angles
from repro.satellites.satellite import Satellite
from repro.scheduling.scheduler import (
    DownlinkPlan,
    DownlinkScheduler,
    MatcherName,
    ScheduleStep,
)
from repro.scheduling.value_functions import LatencyValue, ValueFunction
from repro.obs import ObsConfig
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation
from repro.simulation.metrics import SimulationReport
from repro.weather.provider import ClearSkyProvider, WeatherProvider


class DGSNetwork:
    """A distributed ground station network bound to a satellite fleet.

    All constructor arguments are keyword-only; ``satellites`` and
    ``network`` are required.
    """

    def __init__(
        self,
        *args,
        satellites: list[Satellite] | None = None,
        network: GroundStationNetwork | None = None,
        value_function: ValueFunction | None = None,
        weather: WeatherProvider | None = None,
        matcher: MatcherName = "stable",
        step_s: float = 60.0,
    ):
        if args:
            raise TypeError(
                "DGSNetwork() no longer accepts positional arguments (the "
                "PR-3 deprecation shim was removed); pass satellites=, "
                "network= (and value_function=, weather=) as keywords"
            )
        if satellites is None or network is None:
            raise TypeError(
                "DGSNetwork missing required keyword arguments: satellites=, "
                "network="
            )
        if not satellites:
            raise ValueError("need at least one satellite")
        if len(network) == 0:
            raise ValueError("need at least one ground station")
        self.satellites = satellites
        self.network = network
        self.value_function = value_function or LatencyValue()
        self.weather = weather or ClearSkyProvider()
        self.matcher: MatcherName = matcher
        self.step_s = step_s
        self._scheduler = DownlinkScheduler(
            satellites=satellites,
            network=network,
            value_function=self.value_function,
            matcher=matcher,
            weather=self.weather,
            step_s=step_s,
        )

    # -- geometry ---------------------------------------------------------------

    def look_angles(self, satellite: Satellite, station: GroundStation,
                    when: datetime) -> Topocentric:
        """Azimuth/elevation/range of a satellite from a station."""
        pos_teme, vel_teme = satellite.position_teme(when)
        pos_ecef = teme_to_ecef(pos_teme, datetime_to_jd(when))
        return look_angles(
            station.latitude_deg, station.longitude_deg, station.altitude_km,
            pos_ecef,
        )

    def predict_passes(self, satellite: Satellite, station: GroundStation,
                       start: datetime, end: datetime) -> list[ContactWindow]:
        """All contact windows between one satellite and one station."""
        predictor = PassPredictor(
            satellite.position_teme,
            station.latitude_deg,
            station.longitude_deg,
            station.altitude_km,
            min_elevation_deg=station.min_elevation_deg,
        )
        return list(predictor.passes(start, end))

    # -- link quality ---------------------------------------------------------------

    def link_quality(self, satellite: Satellite, station: GroundStation,
                     when: datetime) -> LinkResult:
        """Predicted link state (Es/N0, MODCOD, bitrate) for a pair now."""
        topo = self.look_angles(satellite, station, when)
        sample = self.weather.sample(
            station.latitude_deg, station.longitude_deg, when
        )
        budget = LinkBudget(radio=satellite.radio, receiver=station.receiver)
        return budget.evaluate(
            range_km=topo.range_km,
            elevation_deg=topo.elevation_deg,
            station_latitude_deg=station.latitude_deg,
            rain_rate_mm_h=sample.rain_rate_mm_h,
            cloud_water_kg_m2=sample.cloud_water_kg_m2,
            station_altitude_km=station.altitude_km,
        )

    # -- scheduling ---------------------------------------------------------------

    def schedule(self, when: datetime) -> ScheduleStep:
        """The matching the scheduler picks at one instant."""
        return self._scheduler.schedule_step(when)

    def build_plan(self, issued_at: datetime,
                   horizon_s: float = 6 * 3600.0) -> DownlinkPlan:
        """A horizon downlink plan (what a tx-capable station uploads)."""
        return self._scheduler.build_plan(issued_at, horizon_s)

    # -- simulation ---------------------------------------------------------------

    def simulate(self, start: datetime, duration_s: float,
                 config: SimulationConfig | None = None,
                 observability: ObsConfig | None = None) -> SimulationReport:
        """Run a data-transfer simulation over this network.

        Satellites' storage state is mutated; construct a fresh fleet per
        independent run (:func:`repro.core.scenarios.build_paper_fleet`).
        Pass ``observability=ObsConfig(...)`` to record stage timings, a
        JSONL event trace, and a run manifest.
        """
        if config is None:
            config = SimulationConfig(
                start=start, duration_s=duration_s, step_s=self.step_s,
                matcher=self.matcher,
            )
        sim = Simulation(
            satellites=self.satellites,
            network=self.network,
            value_function=self.value_function,
            config=config,
            truth_weather=self.weather,
            observability=observability,
        )
        return sim.run()

    # -- convenience ---------------------------------------------------------------

    def visible_pairs(self, when: datetime) -> list[tuple[int, int]]:
        """(satellite_index, station_index) pairs currently in sight."""
        graph = self._scheduler.contact_graph(when)
        return [(e.satellite_index, e.station_index) for e in graph.edges]

    def next_contact(self, satellite: Satellite, start: datetime,
                     search_hours: float = 24.0) -> tuple[GroundStation, ContactWindow] | None:
        """The earliest upcoming pass of a satellite over any station."""
        end = start + timedelta(hours=search_hours)
        best: tuple[GroundStation, ContactWindow] | None = None
        for station in self.network:
            for window in self.predict_passes(satellite, station, start, end):
                if best is None or window.rise_time < best[1].rise_time:
                    best = (station, window)
                break  # passes are chronological; first is earliest for station
        return best
